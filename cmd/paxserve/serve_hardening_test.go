package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"paxq"
)

// overloadServer builds a server over a cluster admitting one query at a
// time with no queueing, so concurrent load must shed.
func overloadServer(t *testing.T) *httptest.Server {
	t.Helper()
	doc, err := paxq.ParseDocumentString(brokerDoc)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		CutPaths:    []string{"//broker"},
		Sites:       2,
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ts := httptest.NewServer(newServer(cluster, time.Minute).handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestServeShedsWith503 hammers an admission-limited server; every
// response is either a served 200 or an explicit 503 — never a hang, never
// a wrong-query artifact from evicted state.
func TestServeShedsWith503(t *testing.T) {
	ts := overloadServer(t)
	const workers = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?q=//stock/code")
			if err != nil {
				t.Errorf("transport error: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			counts[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[http.StatusOK] == 0 {
		t.Error("no request was served")
	}
	for code := range counts {
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Errorf("unexpected status %d under overload (%v)", code, counts)
		}
	}

	// The overload counter on /statsz reflects the shed requests.
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if got := int(stats["overloaded"].(float64)); got != counts[http.StatusServiceUnavailable] {
		t.Errorf("statsz overloaded = %d, want %d", got, counts[http.StatusServiceUnavailable])
	}
}

// TestServeMetricsEndpoint checks the Prometheus exposition: counters
// present, and transport byte totals grow with served queries.
func TestServeMetricsEndpoint(t *testing.T) {
	ts := testServer(t, paxq.TransportLocal)
	body, _ := json.Marshal(queryRequest{Query: "//stock/code"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, metric := range []string{
		"paxserve_queries_total 1",
		"paxserve_errors_total 0",
		"paxserve_overloaded_total 0",
		"paxserve_transport_sent_bytes_total",
		"paxserve_transport_received_bytes_total",
		"paxserve_transport_site_visits_total",
		"paxserve_transport_compute_seconds_total",
		"paxserve_uptime_seconds",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %q in:\n%s", metric, text)
		}
	}
	// The query visited sites; the lifetime visit counter cannot be zero.
	if strings.Contains(text, "paxserve_transport_site_visits_total 0\n") {
		t.Error("site visits not accounted in /metrics")
	}
}
