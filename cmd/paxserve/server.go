package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"paxq"
)

// server wires a Cluster to HTTP. The Cluster is safe for concurrent
// evaluation, so requests are served directly on net/http's per-connection
// goroutines — the cluster is the serving layer, the server only
// translates.
type server struct {
	cluster *paxq.Cluster
	started time.Time

	queries atomic.Int64 // completed evaluations
	errors  atomic.Int64 // failed evaluations (bad query, site failure)
}

// queryRequest is the POST /query body. GET /query?q=... fills only Query
// and takes the defaults.
type queryRequest struct {
	Query string `json:"query"`
	// Algorithm: "pax2" (default), "pax3" or "naive".
	Algorithm string `json:"algorithm,omitempty"`
	// Annotations toggles the §5 pruning optimization; defaults to true.
	Annotations *bool `json:"annotations,omitempty"`
	// ShipXML returns serialized answer subtrees.
	ShipXML bool `json:"shipxml,omitempty"`
}

// queryResponse is the /query response body.
type queryResponse struct {
	Answers []paxq.Answer `json:"answers"`
	Stats   *paxq.Stats   `json:"stats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func newServer(cluster *paxq.Cluster) *server {
	return &server{cluster: cluster, started: time.Now()}
}

// handler returns the server's route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET /query?q=... or POST /query"})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing query"})
		return
	}
	switch strings.ToLower(req.Algorithm) {
	case "", "pax2", "pax3", "naive":
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown algorithm %q (want pax2, pax3 or naive)", req.Algorithm)})
		return
	}
	annotations := true
	if req.Annotations != nil {
		annotations = *req.Annotations
	}
	answers, stats, err := s.cluster.Query(req.Query, paxq.QueryOptions{
		Algorithm:   req.Algorithm,
		Annotations: annotations,
		ShipXML:     req.ShipXML,
	})
	if err != nil {
		s.errors.Add(1)
		status := http.StatusBadRequest
		if paxq.CompileCheck(req.Query) == nil {
			status = http.StatusBadGateway // valid request, cluster-side failure
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	s.queries.Add(1)
	if answers == nil {
		answers = []paxq.Answer{}
	}
	writeJSON(w, http.StatusOK, queryResponse{Answers: answers, Stats: stats})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"fragments": s.cluster.Fragments(),
		"sites":     s.cluster.Sites(),
	})
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.started)
	queries := s.queries.Load()
	qps := 0.0
	if secs := uptime.Seconds(); secs > 0 {
		qps = float64(queries) / secs
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"queries":         queries,
		"errors":          s.errors.Load(),
		"uptime_seconds":  uptime.Seconds(),
		"queries_per_sec": qps,
	})
}
