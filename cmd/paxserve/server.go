package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"paxq"
)

// server wires a Cluster to HTTP. The Cluster is safe for concurrent
// evaluation, so requests are served directly on net/http's per-connection
// goroutines — the cluster is the serving layer, the server only
// translates. Each request's context (client disconnect + the configured
// per-request timeout) is propagated through the cluster down to the
// transport, so a hung site can never wedge an HTTP worker.
type server struct {
	cluster *paxq.Cluster
	started time.Time
	// timeout bounds each evaluation; 0 = no server-imposed deadline.
	timeout time.Duration

	queries    atomic.Int64 // completed evaluations
	errors     atomic.Int64 // failed evaluations (bad query, site failure)
	overloaded atomic.Int64 // evaluations shed by admission control
	timeouts   atomic.Int64 // evaluations that hit a deadline
	edits      atomic.Int64 // applied fragment edits
	editErrors atomic.Int64 // rejected or failed fragment edits
}

// queryRequest is the POST /query body. GET /query?q=... fills only Query
// and takes the defaults.
type queryRequest struct {
	Query string `json:"query"`
	// Algorithm: "pax2" (default), "pax3" or "naive".
	Algorithm string `json:"algorithm,omitempty"`
	// Annotations toggles the §5 pruning optimization; defaults to true.
	Annotations *bool `json:"annotations,omitempty"`
	// ShipXML returns serialized answer subtrees.
	ShipXML bool `json:"shipxml,omitempty"`
}

// queryResponse is the /query response body.
type queryResponse struct {
	Answers []paxq.Answer `json:"answers"`
	Stats   *paxq.Stats   `json:"stats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func newServer(cluster *paxq.Cluster, timeout time.Duration) *server {
	return &server{cluster: cluster, started: time.Now(), timeout: timeout}
}

// handler returns the server's route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/edit", s.handleEdit)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET /query?q=... or POST /query"})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing query"})
		return
	}
	switch strings.ToLower(req.Algorithm) {
	case "", "pax2", "pax3", "naive":
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown algorithm %q (want pax2, pax3 or naive)", req.Algorithm)})
		return
	}
	annotations := true
	if req.Annotations != nil {
		annotations = *req.Annotations
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	answers, stats, err := s.cluster.QueryContext(ctx, req.Query, paxq.QueryOptions{
		Algorithm:   req.Algorithm,
		Annotations: annotations,
		ShipXML:     req.ShipXML,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
			// The client went away mid-evaluation; nobody reads this
			// response and the cluster did nothing wrong — don't count it
			// as a server error. 499 is the de-facto "client closed
			// request" status.
			writeJSON(w, statusClientClosedRequest, errorResponse{Error: err.Error()})
			return
		}
		s.errors.Add(1)
		writeJSON(w, s.statusFor(req.Query, err), errorResponse{Error: err.Error()})
		return
	}
	s.queries.Add(1)
	if answers == nil {
		answers = []paxq.Answer{}
	}
	writeJSON(w, http.StatusOK, queryResponse{Answers: answers, Stats: stats})
}

// editRequest is the POST /edit body: one fragment mutation, addressed by
// the fragment-local node IDs /query answers report.
type editRequest struct {
	Fragment int    `json:"fragment"`
	Op       string `json:"op"`             // "insert", "delete" or "rename"
	Node     int    `json:"node"`           // delete/rename target; insert parent
	Pos      int    `json:"pos,omitempty"`  // insert slot among Node's children
	Label    string `json:"label,omitempty"`
	// SubtreeXML is the insert payload, a single-rooted XML snippet.
	SubtreeXML string `json:"subtree_xml,omitempty"`
}

// editResponse is the /edit response body.
type editResponse struct {
	Result *paxq.EditResult `json:"result"`
}

// handleEdit applies one fragment edit through the cluster: every replica
// hosting the fragment moves to the new version, and only the cached
// Stage-1 state the edit can affect is invalidated (watch
// sitecache_scoped_retained in /metrics move). In-flight queries keep
// their consistent pre-edit view; queries arriving after the response see
// the edit.
func (s *server) handleEdit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST /edit"})
		return
	}
	var req editRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	var op paxq.EditOp
	switch strings.ToLower(req.Op) {
	case "insert":
		op = paxq.EditInsert
	case "delete":
		op = paxq.EditDelete
	case "rename":
		op = paxq.EditRename
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown edit op %q (want insert, delete or rename)", req.Op)})
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	res, err := s.cluster.ApplyEditContext(ctx, paxq.Edit{
		Fragment:   req.Fragment,
		Op:         op,
		Node:       req.Node,
		Pos:        req.Pos,
		Label:      req.Label,
		SubtreeXML: req.SubtreeXML,
	})
	if err != nil {
		s.editErrors.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts.Add(1)
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	s.edits.Add(1)
	writeJSON(w, http.StatusOK, editResponse{Result: res})
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the evaluation finished.
const statusClientClosedRequest = 499

// statusFor classifies an evaluation failure: shed load is 503 (retryable,
// with Retry-After semantics left to the client), a deadline is 504, a
// malformed query is the client's 400, and anything else from a valid
// query is a cluster-side 502. (A client disconnect is handled before this
// is called.)
func (s *server) statusFor(query string, err error) int {
	switch {
	case errors.Is(err, paxq.ErrOverloaded):
		s.overloaded.Add(1)
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		return http.StatusGatewayTimeout
	case paxq.CompileCheck(query) == nil:
		return http.StatusBadGateway
	default:
		return http.StatusBadRequest
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"fragments": s.cluster.Fragments(),
		"sites":     s.cluster.Sites(),
	})
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.started)
	queries := s.queries.Load()
	qps := 0.0
	if secs := uptime.Seconds(); secs > 0 {
		qps = float64(queries) / secs
	}
	ts := s.cluster.TransportStats()
	cache := ts.SiteCache
	writeJSON(w, http.StatusOK, map[string]any{
		"queries":         queries,
		"errors":          s.errors.Load(),
		"overloaded":      s.overloaded.Load(),
		"timeouts":        s.timeouts.Load(),
		"edits":           s.edits.Load(),
		"edit_errors":     s.editErrors.Load(),
		"uptime_seconds":  uptime.Seconds(),
		"queries_per_sec": qps,
		"sitecache": map[string]any{
			"hits":                  cache.Hits,
			"misses":                cache.Misses,
			"evictions":             cache.Evictions,
			"expirations":           cache.Expirations,
			"invalidations":         cache.Invalidations,
			"scoped_invalidations":  cache.ScopedInvalidations,
			"scoped_retained":       cache.ScopedRetained,
			"entries":               cache.Entries,
			"generation":            cache.Generation,
			"saved_compute_seconds": cache.SavedCompute.Seconds(),
		},
		"failover": map[string]any{
			"retries":                ts.Failover.Retries,
			"failovers":              ts.Failover.Failovers,
			"dead_site_detections":   ts.Failover.DeadSiteDetections,
			"reestablished_sessions": ts.Failover.ReestablishedSessions,
		},
	})
}

// handleMetrics exposes the serving counters and the transport's lifetime
// cost counters in the Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ts := s.cluster.TransportStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	counter("paxserve_queries_total", "Completed evaluations.", s.queries.Load())
	counter("paxserve_errors_total", "Failed evaluations.", s.errors.Load())
	counter("paxserve_overloaded_total", "Evaluations shed by admission control.", s.overloaded.Load())
	counter("paxserve_timeouts_total", "Evaluations that exceeded a deadline.", s.timeouts.Load())
	counter("paxserve_edits_total", "Applied fragment edits.", s.edits.Load())
	counter("paxserve_edit_errors_total", "Rejected or failed fragment edits.", s.editErrors.Load())
	counter("paxserve_transport_sent_bytes_total", "Bytes sent coordinator to sites.", ts.BytesSent)
	counter("paxserve_transport_received_bytes_total", "Bytes received from sites.", ts.BytesReceived)
	counter("paxserve_transport_site_visits_total", "Site calls completed.", ts.TotalVisits)
	counter("paxserve_transport_compute_seconds_total", "Summed site computation time.", ts.TotalCompute.Seconds())
	counter("paxserve_sitecache_hits_total", "Stage-1 cache hits across sites.", ts.SiteCache.Hits)
	counter("paxserve_sitecache_misses_total", "Stage-1 cache misses across sites.", ts.SiteCache.Misses)
	counter("paxserve_sitecache_evictions_total", "Stage-1 cache entries displaced by capacity.", ts.SiteCache.Evictions)
	counter("paxserve_sitecache_expirations_total", "Stage-1 cache entries dropped by TTL.", ts.SiteCache.Expirations)
	counter("paxserve_sitecache_invalidations_total", "Stage-1 cache entries dropped by generation bumps.", ts.SiteCache.Invalidations)
	counter("paxserve_sitecache_scoped_invalidations_total", "Stage-1 cache entries a fragment edit had to drop.", ts.SiteCache.ScopedInvalidations)
	counter("paxserve_sitecache_scoped_retained_total", "Stage-1 cache entries carried across a fragment edit.", ts.SiteCache.ScopedRetained)
	counter("paxserve_sitecache_saved_compute_seconds_total", "Site computation avoided by cache hits.", ts.SiteCache.SavedCompute.Seconds())
	counter("paxserve_failover_retries_total", "Stage calls retried after a retriable failure.", ts.Failover.Retries)
	counter("paxserve_failovers_total", "Stage calls rotated to a replica site.", ts.Failover.Failovers)
	counter("paxserve_failover_dead_sites_total", "Transport-level dead-site detections.", ts.Failover.DeadSiteDetections)
	counter("paxserve_failover_reestablished_sessions_total", "Query sessions re-established on a replica by stage replay.", ts.Failover.ReestablishedSessions)
	fmt.Fprintf(&b, "# HELP paxserve_sitecache_entries Live Stage-1 cache entries across sites.\n# TYPE paxserve_sitecache_entries gauge\npaxserve_sitecache_entries %d\n",
		ts.SiteCache.Entries)
	fmt.Fprintf(&b, "# HELP paxserve_uptime_seconds Seconds since start.\n# TYPE paxserve_uptime_seconds gauge\npaxserve_uptime_seconds %f\n",
		time.Since(s.started).Seconds())
	for site, visits := range ts.SiteVisits {
		fmt.Fprintf(&b, "paxserve_site_visits_total{site=\"%d\"} %d\n", site, visits)
	}
	w.Write([]byte(b.String()))
}
