package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paxq"
)

// TestFailoverCountersScrape drives a real failover through the HTTP
// layer and checks it surfaces end to end: a replicated cluster serves a
// query while its primary site is down for a drill, the answer comes
// back unchanged, and the failover counters move in the per-query stats,
// in /metrics (Prometheus text) and in /statsz (JSON).
func TestFailoverCountersScrape(t *testing.T) {
	doc, err := paxq.ParseDocumentString(brokerDoc)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		CutPaths: []string{"//broker"},
		Sites:    2,
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ts := httptest.NewServer(newServer(cluster, 0).handler())
	t.Cleanup(ts.Close)

	query := `//broker[//stock/code = "GOOG"]/name`
	post := func(phase string) queryResponse {
		t.Helper()
		body, _ := json.Marshal(queryRequest{Query: query, Algorithm: "pax3"})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		qr := decodeQueryResponse(t, resp)
		if len(qr.Answers) != 1 || qr.Answers[0].Value != "Smith" {
			t.Fatalf("%s: answers = %+v, want [Smith]", phase, qr.Answers)
		}
		return qr
	}

	// Healthy fleet first: the answer, with no failovers.
	if qr := post("healthy"); qr.Stats.Failovers != 0 {
		t.Fatalf("healthy query reported %d failovers", qr.Stats.Failovers)
	}

	// Take the primary of the first replica group down for the next three
	// calls; the default replicated retry policy must rotate to its twin.
	if err := cluster.DrillSiteOutage(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	qr := post("during outage")
	if qr.Stats.Failovers == 0 || qr.Stats.Retries == 0 {
		t.Fatalf("outage query stats = retries %d, failovers %d; want both > 0", qr.Stats.Retries, qr.Stats.Failovers)
	}

	// /metrics: the four failover counters are exposed, retries and
	// failovers non-zero.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, name := range []string{
		"paxserve_failover_retries_total",
		"paxserve_failovers_total",
		"paxserve_failover_dead_sites_total",
		"paxserve_failover_reestablished_sessions_total",
	} {
		if !strings.Contains(text, "# TYPE "+name+" counter") {
			t.Errorf("/metrics missing %s", name)
		}
	}
	for _, nonzero := range []string{"paxserve_failover_retries_total 0\n", "paxserve_failovers_total 0\n", "paxserve_failover_dead_sites_total 0\n"} {
		if strings.Contains(text, nonzero) {
			t.Errorf("/metrics still reports %q after a served failover", strings.TrimSpace(nonzero))
		}
	}

	// /statsz agrees.
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var statsz struct {
		Failover struct {
			Retries               int64 `json:"retries"`
			Failovers             int64 `json:"failovers"`
			DeadSiteDetections    int64 `json:"dead_site_detections"`
			ReestablishedSessions int64 `json:"reestablished_sessions"`
		} `json:"failover"`
	}
	err = json.NewDecoder(resp.Body).Decode(&statsz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if statsz.Failover.Retries == 0 || statsz.Failover.Failovers == 0 || statsz.Failover.DeadSiteDetections == 0 {
		t.Fatalf("/statsz failover = %+v; want non-zero retries, failovers and dead-site detections", statsz.Failover)
	}
}
