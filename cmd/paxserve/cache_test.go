package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paxq"
)

// cacheTestServer is testServer with the Stage-1 site cache enabled.
func cacheTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	doc, err := paxq.ParseDocumentString(brokerDoc)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		CutPaths:      []string{"//broker"},
		Sites:         2,
		SiteCacheSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ts := httptest.NewServer(newServer(cluster, 0).handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestServeSiteCacheCounters drives a repeated qualified query through the
// HTTP layer and checks the cache counters surface in both /metrics
// (Prometheus text) and /statsz (JSON), with answers stable across the
// miss and hit paths.
func TestServeSiteCacheCounters(t *testing.T) {
	ts := cacheTestServer(t)
	query := `//broker[//stock/code = "GOOG"]/name`
	body, _ := json.Marshal(queryRequest{Query: query, Algorithm: "pax3"})
	var first []paxq.Answer
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		qr := decodeQueryResponse(t, resp)
		if len(qr.Answers) != 1 || qr.Answers[0].Value != "Smith" {
			t.Fatalf("run %d: answers = %+v", i, qr.Answers)
		}
		if i == 0 {
			first = qr.Answers
		} else if qr.Answers[0] != first[0] {
			t.Fatalf("run %d: cached answer diverged: %+v vs %+v", i, qr.Answers[0], first[0])
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	text := string(metrics)
	for _, name := range []string{
		"paxserve_sitecache_hits_total",
		"paxserve_sitecache_misses_total",
		"paxserve_sitecache_evictions_total",
		"paxserve_sitecache_expirations_total",
		"paxserve_sitecache_invalidations_total",
		"paxserve_sitecache_saved_compute_seconds_total",
		"paxserve_sitecache_entries",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if strings.Contains(text, "paxserve_sitecache_hits_total 0\n") {
		t.Error("/metrics reports zero cache hits after repeated queries")
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statsz struct {
		SiteCache struct {
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Entries int   `json:"entries"`
		} `json:"sitecache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statsz); err != nil {
		t.Fatal(err)
	}
	if statsz.SiteCache.Hits == 0 || statsz.SiteCache.Misses == 0 || statsz.SiteCache.Entries == 0 {
		t.Fatalf("/statsz sitecache = %+v; want non-zero hits, misses and entries", statsz.SiteCache)
	}
}
