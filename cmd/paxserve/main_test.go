package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"paxq"
)

// brokerDoc is the document behind the package quick start's query.
const brokerDoc = `<clientele>
  <client><country>US</country>
    <broker><name>Smith</name>
      <market><name>NASDAQ</name>
        <stock><code>GOOG</code><buy>500</buy><qt>100</qt></stock>
      </market>
    </broker>
  </client>
  <client><country>Canada</country>
    <broker><name>Jones</name>
      <market><name>NYSE</name>
        <stock><code>YHOO</code><buy>30</buy><qt>50</qt></stock>
      </market>
    </broker>
  </client>
</clientele>`

func testServer(t *testing.T, transport paxq.TransportKind) *httptest.Server {
	t.Helper()
	doc, err := paxq.ParseDocumentString(brokerDoc)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		CutPaths:  []string{"//broker"},
		Sites:     2,
		Transport: transport,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ts := httptest.NewServer(newServer(cluster, 0).handler())
	t.Cleanup(ts.Close)
	return ts
}

func decodeQueryResponse(t *testing.T, resp *http.Response) queryResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

// TestServeQuickstartQuery serves the package quick start's query over
// HTTP: GET and POST, checking answers and the per-query stats.
func TestServeQuickstartQuery(t *testing.T) {
	ts := testServer(t, paxq.TransportLocal)
	query := `//broker[//stock/code = "GOOG"]/name`

	resp, err := http.Get(ts.URL + "/query?q=" + "//broker//name")
	if err != nil {
		t.Fatal(err)
	}
	if qr := decodeQueryResponse(t, resp); len(qr.Answers) != 4 {
		t.Fatalf("GET //broker//name: %d answers, want 4", len(qr.Answers))
	}

	body, _ := json.Marshal(queryRequest{Query: query, Algorithm: "pax3"})
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	qr := decodeQueryResponse(t, resp)
	if len(qr.Answers) != 1 || qr.Answers[0].Value != "Smith" {
		t.Fatalf("answers = %+v, want the GOOG broker Smith", qr.Answers)
	}
	if qr.Stats == nil || qr.Stats.Algorithm != "PaX3" {
		t.Fatalf("stats = %+v", qr.Stats)
	}
	if qr.Stats.MaxSiteVisits > 3 {
		t.Errorf("MaxSiteVisits = %d, want <= 3", qr.Stats.MaxSiteVisits)
	}
}

// TestServeConcurrentRequests hammers the server from many goroutines over
// the TCP transport; every response must carry its own within-bound stats.
func TestServeConcurrentRequests(t *testing.T) {
	ts := testServer(t, paxq.TransportTCP)
	queries := []string{
		`//broker[//stock/code = "GOOG"]/name`,
		"//stock/code",
		"//client/country",
		"//market/name",
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				body, _ := json.Marshal(queryRequest{Query: queries[(w+i)%len(queries)], Algorithm: "pax3"})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				qr := decodeQueryResponse(t, resp)
				if qr.Stats.MaxSiteVisits > 3 {
					t.Errorf("worker %d: MaxSiteVisits = %d", w, qr.Stats.MaxSiteVisits)
				}
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if got := stats["queries"].(float64); got != workers*3 {
		t.Errorf("statsz queries = %v, want %d", got, workers*3)
	}
}

// TestServeErrors covers the failure surface: bad syntax, missing query,
// wrong method.
func TestServeErrors(t *testing.T) {
	ts := testServer(t, paxq.TransportLocal)
	for _, tc := range []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"bad syntax", func() (*http.Response, error) {
			return http.Get(ts.URL + "/query?q=" + "%5B%5B%5B")
		}, http.StatusBadRequest},
		{"missing query", func() (*http.Response, error) {
			return http.Get(ts.URL + "/query")
		}, http.StatusBadRequest},
		{"wrong method", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || e.Error == "" {
			t.Errorf("%s: status %d body %+v, want %d with error", tc.name, resp.StatusCode, e, tc.status)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["fragments"].(float64) < 2 {
		t.Errorf("healthz = %v", h)
	}
}

// TestServeUnknownAlgorithmIs400: a client-input error must never be
// classified as a cluster-side 502.
func TestServeUnknownAlgorithmIs400(t *testing.T) {
	ts := testServer(t, paxq.TransportLocal)
	body, _ := json.Marshal(queryRequest{Query: "//stock/code", Algorithm: "bogus"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400 for a bad algorithm", resp.Status)
	}
}
