// Command paxserve is the multi-query serving layer: it fragments a
// document over a cluster once at startup and then serves XPath queries
// over HTTP/JSON, evaluating any number of them concurrently with the
// paper's per-query guarantees intact (each response's stats — visit
// counts, bytes, computation — cover that query alone).
//
// Serve an XML file fragmented four ways over two in-process sites:
//
//	paxserve -addr :8377 -file data.xml -frags 4 -sites 2
//
// Serve a generated XMark document over real TCP sites on loopback:
//
//	paxserve -xmark-mb 5 -sites 4 -tcp
//
// Query it:
//
//	curl 'localhost:8377/query?q=//person/name'
//	curl -d '{"query":"//broker[//stock/code = \"GOOG\"]/name","algorithm":"pax3"}' localhost:8377/query
//	curl localhost:8377/healthz
//	curl localhost:8377/statsz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"paxq"
)

func main() {
	addr := flag.String("addr", ":8377", "HTTP listen address")
	file := flag.String("file", "", "XML document to serve")
	xmarkMB := flag.Float64("xmark-mb", 0, "generate an XMark document of ~this many MB instead of -file")
	xmarkSites := flag.Int("xmark-sites", 4, "XMark site subtrees when generating")
	frags := flag.Int("frags", 4, "number of random fragments")
	var cuts multiFlag
	flag.Var(&cuts, "cut", "XPath selecting cut elements (repeatable; overrides -frags)")
	maxNodes := flag.Int("max-nodes", 0, "size-based fragmentation cap (overrides -frags)")
	sites := flag.Int("sites", 0, "number of sites (default one per fragment)")
	tcp := flag.Bool("tcp", false, "deploy sites as TCP servers on loopback instead of in-process")
	seed := flag.Int64("seed", 1, "fragmentation / generation seed")
	flag.Parse()

	var doc *paxq.Document
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		doc, err = paxq.ParseDocument(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *xmarkMB > 0:
		doc = paxq.GenerateXMark(*xmarkSites, *xmarkMB, *seed)
	default:
		fmt.Fprintln(os.Stderr, "paxserve: one of -file or -xmark-mb is required")
		os.Exit(2)
	}

	transport := paxq.TransportLocal
	if *tcp {
		transport = paxq.TransportTCP
	}
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		Fragments:        *frags,
		CutPaths:         cuts,
		MaxFragmentNodes: *maxNodes,
		Sites:            *sites,
		Transport:        transport,
		Seed:             *seed,
	})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()

	log.Printf("paxserve: %d nodes, %d fragments over %d sites (tcp=%v), listening on %s",
		doc.Nodes(), cluster.Fragments(), cluster.Sites(), *tcp, *addr)
	srv := newServer(cluster)
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		fatal(err)
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "paxserve: %v\n", err)
	os.Exit(1)
}
