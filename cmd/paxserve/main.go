// Command paxserve is the multi-query serving layer: it fragments a
// document over a cluster once at startup and then serves XPath queries
// over HTTP/JSON, evaluating any number of them concurrently with the
// paper's per-query guarantees intact (each response's stats — visit
// counts, bytes, computation — cover that query alone).
//
// Serve an XML file fragmented four ways over two in-process sites:
//
//	paxserve -addr :8377 -file data.xml -frags 4 -sites 2
//
// Serve a generated XMark document over real TCP sites on loopback, with
// admission control and per-request deadlines:
//
//	paxserve -xmark-mb 5 -sites 4 -tcp -max-inflight 64 -queue-timeout 100ms -request-timeout 5s
//
// Query it:
//
//	curl 'localhost:8377/query?q=//person/name'
//	curl -d '{"query":"//broker[//stock/code = \"GOOG\"]/name","algorithm":"pax3"}' localhost:8377/query
//	curl localhost:8377/healthz
//	curl localhost:8377/statsz
//	curl localhost:8377/metrics
//
// Operational behavior:
//
//   - -max-inflight bounds concurrently admitted evaluations; excess load
//     is shed with HTTP 503 (or queued up to -queue-timeout first).
//   - -request-timeout bounds each evaluation end to end; a deadline hit
//     returns HTTP 504. The deadline travels as a context down to the
//     site transport, so a hung site cannot wedge an HTTP worker.
//   - -cache-size equips every site with a Stage-1 memoization cache:
//     repeated queries answer their qualifier stage from cache with zero
//     tree traversal (hit/miss/eviction counters appear in /metrics and
//     /statsz); -cache-ttl bounds entry lifetime.
//   - -batch-window coalesces stage requests from concurrently served
//     queries bound for the same site into one batch envelope (at most
//     -max-batch members): one site visit serves them all, identical
//     qualifier stages are evaluated once, and each response's stats
//     still cover that query alone. Off by default.
//   - -replicas deploys each fragment group on that many replica sites;
//     a site that dies or restarts mid-query is survived by per-stage
//     failover to the next replica (budget and backoff via the -retry-*
//     flags), with the answer still byte-identical to centralized
//     evaluation. -registry pins the fleet layout (fragments, replica
//     groups, addresses) from a JSON registry file instead; failover
//     counters appear in /metrics and /statsz.
//   - SIGINT/SIGTERM trigger graceful shutdown: the listener stops, then
//     in-flight requests get up to -shutdown-grace to finish before the
//     cluster is torn down.
//   - /metrics exposes serving, transport and site-cache lifetime counters
//     in the Prometheus text format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paxq"
)

func main() {
	addr := flag.String("addr", ":8377", "HTTP listen address")
	file := flag.String("file", "", "XML document to serve")
	xmarkMB := flag.Float64("xmark-mb", 0, "generate an XMark document of ~this many MB instead of -file")
	xmarkSites := flag.Int("xmark-sites", 4, "XMark site subtrees when generating")
	frags := flag.Int("frags", 4, "number of random fragments")
	var cuts multiFlag
	flag.Var(&cuts, "cut", "XPath selecting cut elements (repeatable; overrides -frags)")
	maxNodes := flag.Int("max-nodes", 0, "size-based fragmentation cap (overrides -frags)")
	sites := flag.Int("sites", 0, "number of sites (default one per fragment)")
	tcp := flag.Bool("tcp", false, "deploy sites as TCP servers on loopback instead of in-process")
	seed := flag.Int64("seed", 1, "fragmentation / generation seed")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently evaluated queries (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", 0, "admission control: how long a query may queue for a slot before shedding (0 = shed immediately)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request evaluation deadline (0 = none)")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown window for in-flight requests")
	siteParallel := flag.Int("site-parallelism", 0, "per-site fragment evaluation parallelism (0 = GOMAXPROCS, 1 = sequential)")
	codecName := flag.String("codec", "binary", "wire codec between coordinator and sites: binary or gob")
	noSimplify := flag.Bool("no-simplify", false, "disable the residual-formula simplification pass at sites")
	vectorEval := flag.Bool("vector-eval", false, "use the bit-packed columnar Stage-1 evaluator at sites")
	cacheSize := flag.Int("cache-size", 0, "per-site Stage-1 memoization cache entries (0 = disabled)")
	cacheTTL := flag.Duration("cache-ttl", 0, "lifetime of memoized Stage-1 results (0 = until evicted)")
	batchWindow := flag.Duration("batch-window", 0, "coalescing window for multi-query stage batching (0 = disabled)")
	maxBatch := flag.Int("max-batch", 0, "max queries per batch envelope (0 = default 16; needs -batch-window)")
	replicas := flag.Int("replicas", 1, "replica sites per fragment group; >1 deploys a replicated fleet with failover")
	registry := flag.String("registry", "", "site registry JSON mapping fragments to replica groups (overrides -sites and -replicas)")
	retryAttempts := flag.Int("retry-attempts", 0, "max attempts per stage call before a query aborts (0 = policy default)")
	retryBackoff := flag.Duration("retry-backoff", 0, "initial backoff between stage-call retries (needs -retry-attempts)")
	retryMaxBackoff := flag.Duration("retry-max-backoff", 0, "cap on the exponential retry backoff (needs -retry-attempts)")
	flag.Parse()

	codec, err := paxq.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}

	var doc *paxq.Document
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		var perr error
		doc, perr = paxq.ParseDocument(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
	case *xmarkMB > 0:
		doc = paxq.GenerateXMark(*xmarkSites, *xmarkMB, *seed)
	default:
		fmt.Fprintln(os.Stderr, "paxserve: one of -file or -xmark-mb is required")
		os.Exit(2)
	}

	transport := paxq.TransportLocal
	if *tcp {
		transport = paxq.TransportTCP
	}
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		Fragments:        *frags,
		CutPaths:         cuts,
		MaxFragmentNodes: *maxNodes,
		Sites:            *sites,
		Transport:        transport,
		Seed:             *seed,
		MaxInFlight:      *maxInflight,
		QueueTimeout:     *queueTimeout,
		SiteParallelism:  *siteParallel,
		Codec:            codec,
		DisableSimplify:  *noSimplify,
		SiteCacheSize:    *cacheSize,
		SiteCacheTTL:     *cacheTTL,
		SiteVectorEval:   *vectorEval,
		BatchWindow:      *batchWindow,
		MaxBatchSize:     *maxBatch,
		Replicas:         *replicas,
		Registry:         *registry,
		RetryMaxAttempts: *retryAttempts,
		RetryBackoff:     *retryBackoff,
		RetryMaxBackoff:  *retryMaxBackoff,
	})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()

	log.Printf("paxserve: %d nodes, %d fragments over %d sites (tcp=%v), listening on %s",
		doc.Nodes(), cluster.Fragments(), cluster.Sites(), *tcp, *addr)
	srv := &http.Server{Addr: *addr, Handler: newServer(cluster, *reqTimeout).handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("paxserve: shutting down (up to %v for in-flight requests)", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("paxserve: shutdown: %v", err)
	}
	log.Printf("paxserve: bye")
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "paxserve: %v\n", err)
	os.Exit(1)
}
