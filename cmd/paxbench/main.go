// Command paxbench regenerates the experimental study of §6 of the paper:
// Figures 9(a)–(b) (Experiment 1), 10(a)–(d) (Experiment 2), 11(a)–(d)
// (Experiment 3), the Experiment-2 fragment-size table and the Fig. 7 query
// table, plus the communication-bound validation (§3.4).
//
// Usage:
//
//	paxbench -exp all -scale 0.05
//	paxbench -exp 2 -scale 0.1 -runs 5 -csv
//	paxbench -exp queries
//
// The concurrent mode benchmarks the multi-query serving layer: N workers
// evaluate the paper's queries simultaneously over a TCP deployment, and
// every single Result is checked against the per-query visit bound:
//
//	paxbench -exp concurrent -workers 8 -load 25 -scale 0.05
//
// The codec mode benchmarks the wire layer itself — binary vs gob, with
// and without formula simplification — and, with -json, writes the
// machine-readable perf baseline the repo tracks over time:
//
//	paxbench -exp codec -json BENCH_codec.json
//	paxbench -exp diff -load 10 -json BENCH_diff.json
//
// The fault mode runs the fault-injection differential harness: -load
// randomized kill/restart schedules against replicated fleets on each
// transport (in-process hook faults; real server kills over TCP), every
// survived query checked byte-identical to centralized evaluation, within
// the failover visit bound, with cost ledgers conserved:
//
//	paxbench -exp fault -load 50 -json BENCH_fault.json
//
// The cache mode benchmarks the site-side Stage-1 memoization cache:
// repeated qualified queries over a TCP deployment, with and without the
// cache, reporting queries/sec and the hit/saved-compute counters:
//
//	paxbench -exp cache -json BENCH_cache.json
//
// The vector mode benchmarks the site-side Stage-1 evaluators against each
// other: the per-node scalar pass vs the bit-packed columnar pass
// (-vector-eval on the serving commands), on the same repeated qualified
// queries, cold and site-cache-warm, reporting per-stage site compute:
//
//	paxbench -exp vector -json BENCH_vector.json
//
// The batch mode benchmarks coordinator-side multi-query stage batching:
// 64–256 concurrent TCP clients repeating qualified queries, with the
// coalescing window off and on, reporting queries/sec per cell and the
// speedup batching buys:
//
//	paxbench -exp batch -batch-window 200us -max-batch 16 -json BENCH_batch.json
//
// -scale is the dataset size relative to the paper's 100 MB baseline
// (0.05 → 5 MB cumulative).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"paxq/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: 1, 2, 3, traffic, t2, queries, diff, fault, concurrent, codec, cache, vector, batch, edit or all")
	scale := flag.Float64("scale", 0.02, "data scale relative to the paper's 100MB baseline")
	runs := flag.Int("runs", 3, "runs per data point (median reported)")
	steps := flag.Int("steps", 10, "experiment 2/3 iterations")
	frags := flag.Int("frags", 10, "experiment 1 max fragments")
	seed := flag.Int64("seed", 1, "generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonPath := flag.String("json", "", "write the mode's machine-readable results (JSON) to this file")
	workers := flag.Int("workers", 8, "concurrent mode: parallel query streams")
	load := flag.Int("load", 25, "concurrent mode: queries per worker; diff mode: seeds")
	sitePar := flag.Int("site-parallelism", 0, "concurrent mode: per-site fragment evaluation parallelism (0 = GOMAXPROCS, 1 = sequential)")
	vectorEval := flag.Bool("vector-eval", false, "concurrent mode: deploy sites with the bit-packed columnar Stage-1 evaluator")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond, "batch mode: coalescing window for the batched variant")
	maxBatch := flag.Int("max-batch", 16, "batch mode: max queries coalesced into one site envelope")
	flag.Parse()

	ctx := context.Background()
	cfg := harness.Config{Scale: *scale, MaxFrags: *frags, Steps: *steps, Runs: *runs, Seed: *seed, VectorEval: *vectorEval}
	writeJSON := func(v any) {
		if *jsonPath == "" {
			return
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	emit := func(f *harness.Figure) {
		if *csv {
			fmt.Printf("# Figure %s — %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f.Table())
		}
	}

	run1 := func() {
		figA, figB, err := harness.Experiment1(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		emit(figA)
		emit(figB)
	}
	run23 := func(want10, want11 bool) {
		fig10, fig11, err := harness.Experiment23(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		if want10 {
			for _, f := range fig10 {
				emit(f)
			}
		}
		if want11 {
			for _, f := range fig11 {
				emit(f)
			}
		}
	}
	runTraffic := func() {
		fig, err := harness.TrafficExperiment(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		emit(fig)
	}
	runT2 := func() {
		sizes, err := harness.FT2Sizes(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Experiment-2 fragment sizes (FT2 layout, bytes at this scale):")
		for i, s := range sizes {
			fmt.Printf("  F%-2d %10d\n", i, s)
		}
		fmt.Println()
	}
	runConcurrent := func() {
		rep, err := harness.ConcurrentLoadParallelism(ctx, cfg, *workers, *load, *sitePar)
		if rep != nil {
			fmt.Println(rep)
		}
		if err != nil {
			fatal(err)
		}
		if rep.Violations > 0 {
			fatal(fmt.Errorf("%d queries exceeded the per-query visit bound", rep.Violations))
		}
	}
	runDiff := func() {
		// Differential mode: distributed vs centralized on random (tree,
		// query, fragmentation) instances, over both transports, with
		// parallel-vs-sequential site evaluation, both codec twins (gob,
		// simplification disabled), the cached-vs-uncached site-cache
		// twins, the vector-evaluator twins and the batched-transport
		// twins cross-checked.
		type diffOut struct {
			Transport string              `json:"transport"`
			Result    *harness.DiffResult `json:"result"`
		}
		var out []diffOut
		for _, tr := range []harness.DiffTransport{harness.DiffLocal, harness.DiffTCP} {
			res, err := harness.DifferentialSweep(ctx, *seed, *load, harness.DiffOptions{
				Transport:       tr,
				CompareParallel: true,
				CompareCodecs:   true,
				CompareCache:    true,
				CompareVector:   true,
				CompareBatch:    true,
			})
			if res != nil {
				fmt.Printf("%s %s\n", tr, res)
				out = append(out, diffOut{Transport: tr.String(), Result: res})
			}
			if err != nil {
				fatal(err)
			}
			if !res.Ok() {
				for _, d := range res.FailureDetails {
					fmt.Println("  " + d)
				}
				fatal(fmt.Errorf("differential checks failed on the %s transport", tr))
			}
		}
		writeJSON(out)
	}
	runFault := func() {
		// Fault mode: randomized kill/restart schedules over replicated
		// fleets on both transports — answers must stay byte-identical to
		// centralized evaluation through every survived outage, visits
		// within the failover bound, ledgers conserved.
		type faultOut struct {
			Transport string               `json:"transport"`
			Result    *harness.FaultResult `json:"result"`
		}
		var out []faultOut
		for _, tr := range []harness.DiffTransport{harness.DiffLocal, harness.DiffTCP} {
			res, err := harness.FaultSweep(ctx, *seed, *load, harness.FaultOptions{Transport: tr})
			if res != nil {
				fmt.Printf("%s %s\n", tr, res)
				out = append(out, faultOut{Transport: tr.String(), Result: res})
			}
			if err != nil {
				fatal(err)
			}
			if !res.Ok() {
				for _, d := range res.FailureDetails {
					fmt.Println("  " + d)
				}
				fatal(fmt.Errorf("fault-injection checks failed on the %s transport", tr))
			}
		}
		writeJSON(out)
	}
	runCodec := func() {
		rep, err := harness.CodecBench(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		writeJSON(rep)
	}
	runCache := func() {
		rep, err := harness.CacheBench(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		writeJSON(rep)
	}
	runVector := func() {
		rep, err := harness.VectorBench(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		writeJSON(rep)
	}
	runBatch := func() {
		rep, err := harness.BatchBench(ctx, cfg, *batchWindow, *maxBatch, *load)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		writeJSON(rep)
	}
	runEdit := func() {
		rep, err := harness.EditBench(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		writeJSON(rep)
	}
	runQueries := func() {
		fmt.Println("Fig. 7 — experiment queries:")
		names := make([]string, 0, len(harness.PaperQueries))
		for name := range harness.PaperQueries {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %s  %s\n", name, harness.PaperQueries[name])
		}
		fmt.Println()
	}

	switch *exp {
	case "1", "1a", "1b":
		run1()
	case "2", "2a", "2b", "2c", "2d":
		run23(true, false)
	case "3", "3a", "3b", "3c", "3d":
		run23(false, true)
	case "traffic":
		runTraffic()
	case "concurrent":
		runConcurrent()
	case "diff":
		runDiff()
	case "fault":
		runFault()
	case "codec":
		runCodec()
	case "cache":
		runCache()
	case "vector":
		runVector()
	case "batch":
		runBatch()
	case "edit":
		runEdit()
	case "t2":
		runT2()
	case "queries":
		runQueries()
	case "all":
		runQueries()
		runT2()
		run1()
		run23(true, true)
		runTraffic()
	default:
		fmt.Fprintf(os.Stderr, "paxbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "paxbench: %v\n", err)
	os.Exit(1)
}
