// Command paxsite serves tree fragments over TCP — one paxsite process per
// machine in the deployment of §6. It loads fragments from a paxfrag
// output directory and answers the stage requests of PaX3/PaX2 issued by a
// paxq coordinator.
//
// Usage (serve fragments 1 and 3 of a saved fragmentation):
//
//	paxsite -dir frags/ -frags 1,3 -listen 127.0.0.1:7001
//
// As a replicated fleet member, the site takes its assignment — fragment
// set and listen address — from a registry file written by
// paxq.SaveRegistry, so every replica of a group serves the group's full
// fragment set and the coordinator's failover layer can rotate between
// them:
//
//	paxsite -dir frags/ -registry fleet.json -site 3
//
// -cache-size enables Stage-1 (qualifier pass) memoization: repeated
// queries are answered from cache with zero tree traversal. Fragments
// loaded from -dir are immutable for the process lifetime, so entries
// only ever leave the cache by eviction or -cache-ttl expiry.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"paxq/internal/dist"
	"paxq/internal/fragment"
	"paxq/internal/pax"
)

func main() {
	dir := flag.String("dir", "", "fragment directory written by paxfrag (required)")
	fragList := flag.String("frags", "all", "comma-separated fragment IDs to host, or 'all'")
	registry := flag.String("registry", "", "site registry JSON: host the fragments registered for -site (overrides -frags; defaults -listen to the registered address)")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	siteID := flag.Int("site", 0, "site identifier: names this fleet member in the registry and in coordinator metrics")
	codecName := flag.String("codec", "binary", "wire codec: binary or gob (must match the coordinator)")
	noSimplify := flag.Bool("no-simplify", false, "disable the residual-formula simplification pass")
	cacheSize := flag.Int("cache-size", 0, "Stage-1 memoization cache entries (0 = disabled)")
	cacheTTL := flag.Duration("cache-ttl", 0, "lifetime of memoized Stage-1 results (0 = until evicted)")
	vectorEval := flag.Bool("vector-eval", false, "use the bit-packed columnar Stage-1 evaluator")
	flag.Parse()

	codec, err := dist.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "paxsite: -dir is required")
		os.Exit(2)
	}
	m, err := fragment.LoadManifest(filepath.Join(*dir, fragment.ManifestName))
	if err != nil {
		fatal(err)
	}
	var ids []fragment.FragID
	switch {
	case *registry != "":
		reg, err := pax.LoadRegistry(*registry)
		if err != nil {
			fatal(err)
		}
		ids = reg.FragsOf(dist.SiteID(*siteID))
		if len(ids) == 0 {
			fatal(fmt.Errorf("registry %s assigns no fragments to site %d", *registry, *siteID))
		}
		// The registered address is the fleet's contract for this site;
		// an explicit -listen still wins (e.g. port 0 in tests).
		listenSet := false
		flag.Visit(func(f *flag.Flag) { listenSet = listenSet || f.Name == "listen" })
		if addr, ok := reg.Addrs()[dist.SiteID(*siteID)]; ok && !listenSet {
			*listen = addr
		}
	case *fragList == "all":
		for i := 0; i < m.Len(); i++ {
			ids = append(ids, fragment.FragID(i))
		}
	default:
		for _, part := range strings.Split(*fragList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad fragment id %q", part))
			}
			ids = append(ids, fragment.FragID(n))
		}
	}
	var frags []*fragment.Fragment
	for _, id := range ids {
		f, err := m.LoadFragment(*dir, id)
		if err != nil {
			fatal(err)
		}
		frags = append(frags, f)
	}
	site := pax.NewSite(dist.SiteID(*siteID), frags)
	site.SetSimplify(!*noSimplify)
	site.SetVectorEval(*vectorEval)
	if *cacheSize > 0 {
		site.EnableCache(*cacheSize, *cacheTTL)
	}
	srv, err := dist.NewTCPServer(*listen, site.Handler(), dist.WithCodec(codec))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("paxsite: site %d serving fragments %v on %s\n", *siteID, ids, srv.Addr())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "paxsite: %v\n", err)
	os.Exit(1)
}
