// Command paxq evaluates XPath queries over fragmented XML documents,
// locally or against a distributed deployment of paxsite servers.
//
// Local mode — fragment an XML file in-process and query it:
//
//	paxq -file data.xml -frags 6 -sites 3 -query '//person/name' -stats
//	paxq -file data.xml -cut '//site' -query '//annotation' -algo pax3 -xa
//
// Remote mode — coordinate paxsite servers over TCP:
//
//	paxq -manifest frags/manifest.json \
//	     -site '0=127.0.0.1:7001' -site '1,2=127.0.0.1:7002' \
//	     -query '//person/name'
//
// In remote mode every fragment listed in the manifest must be mapped to a
// site address.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"paxq"
	"paxq/internal/dist"
	"paxq/internal/fragment"
	"paxq/internal/pax"
)

func main() {
	file := flag.String("file", "", "XML document for local mode")
	manifest := flag.String("manifest", "", "manifest.json for remote mode")
	var sitesFlags multiFlag
	flag.Var(&sitesFlags, "site", "remote mode: 'fragIDs=host:port' mapping (repeatable)")
	query := flag.String("query", "", "XPath query (required unless -repl)")
	algo := flag.String("algo", "pax2", "algorithm: pax2, pax3 or naive")
	xa := flag.Bool("xa", true, "use XPath annotations (§5 optimization)")
	stats := flag.Bool("stats", false, "print the evaluation cost profile")
	shipXML := flag.Bool("xml", false, "print serialized answer subtrees")
	frags := flag.Int("frags", 1, "local mode: number of random fragments")
	var cuts multiFlag
	flag.Var(&cuts, "cut", "local mode: XPath selecting cut elements (repeatable)")
	maxNodes := flag.Int("max-nodes", 0, "local mode: size-based fragmentation cap")
	sites := flag.Int("sites", 0, "local mode: number of sites (default one per fragment)")
	seed := flag.Int64("seed", 1, "fragmentation seed")
	boolMode := flag.Bool("bool", false, "evaluate as a Boolean query (ParBoX)")
	repl := flag.Bool("repl", false, "local mode: read queries interactively from stdin")
	codecName := flag.String("codec", "binary", "remote mode: wire codec, binary or gob (must match the paxsite servers)")
	flag.Parse()

	if *query == "" && !*repl {
		fmt.Fprintln(os.Stderr, "paxq: -query is required (or use -repl)")
		os.Exit(2)
	}
	switch {
	case *file != "" && *repl:
		runREPL(*file, *frags, cuts, *maxNodes, *sites, *seed)
	case *file != "":
		runLocal(*file, *query, *algo, *xa, *stats, *shipXML, *boolMode, *frags, cuts, *maxNodes, *sites, *seed)
	case *manifest != "":
		runRemote(*manifest, sitesFlags, *query, *algo, *xa, *stats, *shipXML, *codecName)
	default:
		fmt.Fprintln(os.Stderr, "paxq: one of -file (local) or -manifest (remote) is required")
		os.Exit(2)
	}
}

// runREPL reads queries from stdin, one per line, against a local cluster.
// Lines starting with ':' are commands — ":algo pax3", ":xa on|off",
// ":stats on|off", ":bool <query>", ":quit".
func runREPL(file string, frags int, cuts []string, maxNodes, sites int, seed int64) {
	f, err := os.Open(file)
	if err != nil {
		fatal(err)
	}
	doc, err := paxq.ParseDocument(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		Fragments: frags, CutPaths: cuts, MaxFragmentNodes: maxNodes, Sites: sites, Seed: seed,
	})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("paxq: %d nodes, %d fragments over %d sites. Enter XPath queries; :help for commands.\n",
		doc.Nodes(), cluster.Fragments(), cluster.Sites())

	algo, xa, stats := "pax2", true, true
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("paxq> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":q":
			return
		case line == ":help":
			fmt.Println("  <query>          evaluate an XPath query")
			fmt.Println("  :bool <query>    evaluate a Boolean query ([...]) via ParBoX")
			fmt.Println("  :algo pax2|pax3|naive")
			fmt.Println("  :xa on|off       toggle XPath annotations")
			fmt.Println("  :stats on|off    toggle cost output")
			fmt.Println("  :quit")
		case strings.HasPrefix(line, ":algo "):
			algo = strings.TrimSpace(strings.TrimPrefix(line, ":algo "))
			fmt.Printf("algorithm = %s\n", algo)
		case strings.HasPrefix(line, ":xa "):
			xa = strings.TrimSpace(strings.TrimPrefix(line, ":xa ")) == "on"
			fmt.Printf("annotations = %v\n", xa)
		case strings.HasPrefix(line, ":stats "):
			stats = strings.TrimSpace(strings.TrimPrefix(line, ":stats ")) == "on"
			fmt.Printf("stats = %v\n", stats)
		case strings.HasPrefix(line, ":bool "):
			ok, err := cluster.EvaluateBool(strings.TrimSpace(strings.TrimPrefix(line, ":bool ")))
			if err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Println(ok)
			}
		case strings.HasPrefix(line, ":"):
			fmt.Printf("unknown command %q; :help lists commands\n", line)
		default:
			answers, st, err := cluster.Query(line, paxq.QueryOptions{Algorithm: algo, Annotations: xa})
			if err != nil {
				fmt.Printf("error: %v\n", err)
				break
			}
			printAnswers(answers, false)
			if stats {
				printStats(st)
			}
		}
		fmt.Print("paxq> ")
	}
}

func runLocal(file, query, algo string, xa, stats, shipXML, boolMode bool, frags int, cuts []string, maxNodes, sites int, seed int64) {
	f, err := os.Open(file)
	if err != nil {
		fatal(err)
	}
	doc, err := paxq.ParseDocument(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		Fragments:        frags,
		CutPaths:         cuts,
		MaxFragmentNodes: maxNodes,
		Sites:            sites,
		Seed:             seed,
	})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()

	if boolMode {
		ok, err := cluster.EvaluateBool(query)
		if err != nil {
			fatal(err)
		}
		fmt.Println(ok)
		return
	}
	answers, st, err := cluster.Query(query, paxq.QueryOptions{Algorithm: algo, Annotations: xa, ShipXML: shipXML})
	if err != nil {
		fatal(err)
	}
	printAnswers(answers, shipXML)
	if stats {
		printStats(st)
	}
}

func runRemote(manifestPath string, siteFlags []string, query, algo string, xa, stats, shipXML bool, codecName string) {
	codec, err := dist.ParseCodec(codecName)
	if err != nil {
		fatal(err)
	}
	m, err := fragment.LoadManifest(manifestPath)
	if err != nil {
		fatal(err)
	}
	ft, err := m.Skeleton()
	if err != nil {
		fatal(err)
	}
	addrs := make(map[dist.SiteID]string)
	siteOf := make(map[fragment.FragID]dist.SiteID)
	for i, spec := range siteFlags {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -site %q, want 'fragIDs=host:port'", spec))
		}
		sid := dist.SiteID(i)
		addrs[sid] = parts[1]
		for _, fs := range strings.Split(parts[0], ",") {
			n, err := strconv.Atoi(strings.TrimSpace(fs))
			if err != nil {
				fatal(fmt.Errorf("bad fragment id %q in -site %q", fs, spec))
			}
			siteOf[fragment.FragID(n)] = sid
		}
	}
	topo, err := pax.NewTopology(ft, siteOf)
	if err != nil {
		fatal(err)
	}
	tcp := dist.NewTCP(addrs, dist.WithCodec(codec))
	defer tcp.Close()
	eng := pax.NewEngine(topo, tcp)

	var alg pax.Algorithm
	switch strings.ToLower(algo) {
	case "pax2":
		alg = pax.PaX2
	case "pax3":
		alg = pax.PaX3
	case "naive":
		alg = pax.Naive
	default:
		fatal(fmt.Errorf("unknown algorithm %q", algo))
	}
	res, err := eng.RunContext(context.Background(), query, pax.Options{Algorithm: alg, Annotations: xa, ShipXML: shipXML})
	if err != nil {
		fatal(err)
	}
	answers := make([]paxq.Answer, len(res.Answers))
	for i, a := range res.Answers {
		answers[i] = paxq.Answer{Fragment: int(a.Frag), Node: int(a.Node), Label: a.Label, Value: a.Value, XML: a.XML}
	}
	printAnswers(answers, shipXML)
	if stats {
		fmt.Printf("stages=%d maxVisits=%d sent=%dB recv=%dB wall=%v totalCompute=%v relevant=%d/%d\n",
			res.Stages, res.MaxVisits, res.BytesSent, res.BytesRecv, res.Wall, res.TotalCompute,
			res.RelevantFrags, res.TotalFrags)
	}
}

func printAnswers(answers []paxq.Answer, shipXML bool) {
	for _, a := range answers {
		if shipXML && a.XML != "" {
			fmt.Println(a.XML)
			continue
		}
		fmt.Printf("<%s> %s\n", a.Label, a.Value)
	}
	fmt.Fprintf(os.Stderr, "%d answer(s)\n", len(answers))
}

func printStats(st *paxq.Stats) {
	fmt.Printf("algorithm=%s stages=%d maxVisits=%d sent=%dB recv=%dB wall=%v totalCompute=%v relevant=%d/%d\n",
		st.Algorithm, st.Stages, st.MaxSiteVisits, st.BytesSent, st.BytesReceived,
		st.Wall, st.TotalCompute, st.RelevantFrags, st.TotalFrags)
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "paxq: %v\n", err)
	os.Exit(1)
}
