package paxq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// findOne returns the single answer of query, with its fragment-local
// address — the coordinates ApplyEdit takes.
func findOne(t *testing.T, c *Cluster, query string) Answer {
	t.Helper()
	ans, err := c.Evaluate(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("%s: %d answers, want 1", query, len(ans))
	}
	return ans[0]
}

// TestApplyEditLifecycle drives an insert, a rename and a delete through
// the public API, addressing targets by the fragment-local coordinates
// answers report, and checks delta-scoped invalidation measurably
// retained cached Stage-1 entries across the disjoint insert.
func TestApplyEditLifecycle(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, SiteCacheSize: 64})

	// Warm the Stage-1 caches with a qualifier query (the memoized stage)
	// whose predicate label footprint {stock, code} is disjoint from the
	// edit below.
	warm := func() []string {
		ans, _, err := c.Query(`//broker[//stock/code = "GOOG"]/name`, QueryOptions{Algorithm: "pax3"})
		if err != nil {
			t.Fatal(err)
		}
		return values(ans)
	}
	before := warm()
	warm()

	target := findOne(t, c, `//broker[name = "CIBC"]`)
	res, err := c.ApplyEdit(Edit{
		Fragment:   target.Fragment,
		Op:         EditInsert,
		Node:       target.Node,
		Pos:        0,
		SubtreeXML: `<note><v>hello</v></note>`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewVersion == 0 || res.Sites != 1 {
		t.Errorf("EditResult = %+v, want version > 0 on 1 site", res)
	}
	if res.BytesSent == 0 || res.BytesReceived == 0 {
		t.Errorf("edit ledger empty: %+v", res)
	}
	// {note, v} is disjoint from every cached query's footprint, so the
	// edited fragment's entries must survive — the structural assertion
	// that scoping beats bump-everything, no timing involved.
	if res.Dropped != 0 {
		t.Errorf("disjoint insert dropped %d cache entries", res.Dropped)
	}
	if res.Retained+res.Patched == 0 {
		t.Error("disjoint insert retained no cache entries")
	}
	if sc := c.TransportStats().SiteCache; sc.ScopedRetained == 0 {
		t.Errorf("TransportStats.SiteCache.ScopedRetained = 0 after a disjoint edit (stats %+v)", sc)
	}

	if got := findOne(t, c, `//note/v`); got.Value != "hello" {
		t.Errorf("inserted subtree evaluates to %q, want %q", got.Value, "hello")
	}
	if got := warm(); !equalStrings(got, before) {
		t.Errorf("disjoint insert changed //client/name: %v, want %v", got, before)
	}

	note := findOne(t, c, `//note`)
	if _, err := c.ApplyEdit(Edit{Fragment: note.Fragment, Op: EditRename, Node: note.Node, Label: "memo"}); err != nil {
		t.Fatal(err)
	}
	if got := findOne(t, c, `//memo/v`); got.Value != "hello" {
		t.Errorf("renamed subtree evaluates to %q, want %q", got.Value, "hello")
	}
	if ans, err := c.Evaluate(`//note`); err != nil || len(ans) != 0 {
		t.Errorf("//note after rename: %d answers, err %v", len(ans), err)
	}

	memo := findOne(t, c, `//memo`)
	if _, err := c.ApplyEdit(Edit{Fragment: memo.Fragment, Op: EditDelete, Node: memo.Node}); err != nil {
		t.Fatal(err)
	}
	if ans, err := c.Evaluate(`//memo`); err != nil || len(ans) != 0 {
		t.Errorf("//memo after delete: %d answers, err %v", len(ans), err)
	}
	if got := warm(); !equalStrings(got, before) {
		t.Errorf("edit round trip changed //client/name: %v, want %v", got, before)
	}
}

// TestApplyEditRejectsInvalid checks the documented failure modes fail
// cleanly, without mutating anything.
func TestApplyEditRejectsInvalid(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2})
	cases := []struct {
		name string
		e    Edit
	}{
		{"fragment out of range", Edit{Fragment: 99, Op: EditDelete, Node: 1}},
		{"negative fragment", Edit{Fragment: -1, Op: EditDelete, Node: 1}},
		{"unknown op", Edit{Fragment: 0, Op: EditOp(9), Node: 1}},
		{"malformed subtree XML", Edit{Fragment: 0, Op: EditInsert, Node: 0, SubtreeXML: "<a><b></a>"}},
		{"empty subtree XML", Edit{Fragment: 0, Op: EditInsert, Node: 0}},
		{"delete fragment root", Edit{Fragment: 0, Op: EditDelete, Node: 0}},
		{"rename fragment root", Edit{Fragment: 0, Op: EditRename, Node: 0, Label: "x"}},
	}
	for _, tc := range cases {
		if _, err := c.ApplyEdit(tc.e); err == nil {
			t.Errorf("%s: ApplyEdit accepted %+v", tc.name, tc.e)
		}
	}
	ans, err := c.Evaluate(`//client/name`)
	if err != nil || len(ans) != 2 {
		t.Fatalf("document changed after rejected edits: %d answers, err %v", len(ans), err)
	}
}

// TestApplyEditConcurrentWithQueries hammers a cached cluster with
// queries while edits land concurrently, at the public API and under
// -race. Every evaluation must see a consistent fragment version: with
// each edit adding exactly one client, any observed //client/name count
// outside [base, base+edits] would be a torn or stale view.
func TestApplyEditConcurrentWithQueries(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, SiteCacheSize: 32})
	const edits = 6

	base, err := c.Evaluate(`//client/name`)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	editErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < edits; i++ {
			_, err := c.ApplyEdit(Edit{
				Fragment:   0,
				Op:         EditInsert,
				Node:       0,
				Pos:        0,
				SubtreeXML: fmt.Sprintf("<client><name>zz%d</name></client>", i),
			})
			if err != nil {
				editErr <- err
				return
			}
		}
		editErr <- nil
	}()
	for i := 0; i < 25; i++ {
		ans, err := c.Evaluate(`//client/name`)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(ans); n < len(base) || n > len(base)+edits {
			t.Fatalf("query %d observed %d client names, want within [%d, %d]", i, n, len(base), len(base)+edits)
		}
	}
	wg.Wait()
	if err := <-editErr; err != nil {
		t.Fatal(err)
	}

	final, err := c.Evaluate(`//client/name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(base)+edits {
		t.Fatalf("after all edits: %d client names, want %d", len(final), len(base)+edits)
	}
	got := values(final)
	sort.Strings(got)
	for i := 0; i < edits; i++ {
		name := fmt.Sprintf("zz%d", i)
		if j := sort.SearchStrings(got, name); j == len(got) || got[j] != name {
			t.Errorf("inserted client %q missing from final answers %v", name, got)
		}
	}
}

// TestApplyEditDuringDrilledOutage runs an edit schedule across every
// fragment of a replicated cluster while a drilled site outage is in
// progress: the per-replica retry loop must ride out the down window
// (EditResult.Retries advancing), every replica must converge to the new
// versions, and queries afterwards must answer as if nothing happened.
func TestApplyEditDuringDrilledOutage(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, Replicas: 2, SiteCacheSize: 32})
	if err := c.DrillSiteOutage(1, 1, 2); err != nil {
		t.Fatal(err)
	}

	retries := 0
	for f := 0; f < c.Fragments(); f++ {
		res, err := c.ApplyEditContext(t.Context(), Edit{
			Fragment:   f,
			Op:         EditInsert,
			Node:       0,
			Pos:        0,
			SubtreeXML: fmt.Sprintf("<note><v>drill%d</v></note>", f),
		})
		if err != nil {
			t.Fatalf("edit of fragment %d during drill: %v", f, err)
		}
		if res.Sites != 2 {
			t.Errorf("fragment %d delivered to %d sites, want the full replica group of 2", f, res.Sites)
		}
		retries += res.Retries
	}
	if retries == 0 {
		t.Error("edit schedule rode through a drilled outage with zero retries — the drill never fired")
	}

	ans, err := c.Evaluate(`//note/v`)
	if err != nil {
		t.Fatal(err)
	}
	got := values(ans)
	sort.Strings(got)
	want := []string{"drill0", "drill1", "drill2", "drill3"}
	if !equalStrings(got, want) {
		t.Errorf("//note/v after drilled edit schedule = %v, want %v", got, want)
	}
	brokers, err := c.Evaluate(`//broker[//stock/code = "GOOG"]/name`)
	if err != nil {
		t.Fatal(err)
	}
	if bs := values(brokers); len(bs) != 2 || !strings.Contains(strings.Join(bs, ","), "CIBC") {
		t.Errorf("qualifier query after drilled edit schedule = %v", bs)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
