package paxq

import (
	"sort"
	"strings"
	"testing"
	"time"
)

const clienteleXML = `<clientele>
  <client><name>Anna</name><country>US</country>
    <broker><name>Etrade</name>
      <market><name>NYSE</name><stock><code>IBM</code><buy>80</buy><qt>50</qt></stock></market>
      <market><name>NASDAQ</name><stock><code>GOOG</code><buy>374</buy><qt>40</qt></stock></market>
    </broker>
  </client>
  <client><name>Lisa</name><country>Canada</country>
    <broker><name>CIBC</name>
      <market><name>TSE</name><stock><code>GOOG</code><buy>382</buy><qt>90</qt></stock></market>
    </broker>
  </client>
</clientele>`

func demoCluster(t *testing.T, opts ClusterOptions) *Cluster {
	t.Helper()
	doc, err := ParseDocumentString(clienteleXML)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func values(ans []Answer) []string {
	out := make([]string, len(ans))
	for i, a := range ans {
		out[i] = a.Value
	}
	sort.Strings(out)
	return out
}

func TestDocumentBasics(t *testing.T) {
	doc, err := ParseDocumentString(clienteleXML)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Nodes() < 20 || doc.Bytes() <= 0 {
		t.Errorf("Nodes=%d Bytes=%d", doc.Nodes(), doc.Bytes())
	}
	if !strings.HasPrefix(doc.XML(), "<clientele>") {
		t.Errorf("XML = %.40q", doc.XML())
	}
	if _, err := ParseDocumentString("<broken"); err == nil {
		t.Error("broken XML must fail")
	}
}

func TestEvaluateDefault(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, Seed: 3})
	ans, err := c.Evaluate(`//broker[//stock/code = "GOOG"]/name`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"CIBC", "Etrade"}
	if got := values(ans); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestQueryAllAlgorithms(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 3, Seed: 5})
	for _, algo := range []string{"pax2", "pax3", "naive", "PaX2"} {
		ans, stats, err := c.Query("client/name", QueryOptions{Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got := values(ans); strings.Join(got, ",") != "Anna,Lisa" {
			t.Errorf("%s: %v", algo, got)
		}
		if stats.TotalFrags != c.Fragments() {
			t.Errorf("%s: stats %+v", algo, stats)
		}
	}
	if _, _, err := c.Query("x", QueryOptions{Algorithm: "quantum"}); err == nil {
		t.Error("unknown algorithm must fail")
	}
	if _, _, err := c.Query("][", QueryOptions{}); err == nil {
		t.Error("bad query must fail")
	}
}

func TestCutPaths(t *testing.T) {
	c := demoCluster(t, ClusterOptions{CutPaths: []string{"//broker", "//market"}})
	// 2 brokers + 3 markets + root = 6 fragments.
	if c.Fragments() != 6 {
		t.Errorf("fragments = %d want 6", c.Fragments())
	}
	ans, err := c.Evaluate("//stock/code")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 3 {
		t.Errorf("answers = %v", ans)
	}
}

func TestCutPathsBadQuery(t *testing.T) {
	doc, _ := ParseDocumentString(clienteleXML)
	if _, err := NewCluster(doc, ClusterOptions{CutPaths: []string{"]["}}); err == nil {
		t.Error("bad cut path must fail")
	}
}

func TestCutPathsRootIgnored(t *testing.T) {
	// Selecting the root as a cut point is silently skipped.
	c := demoCluster(t, ClusterOptions{CutPaths: []string{"/clientele", "//broker"}})
	if c.Fragments() != 3 {
		t.Errorf("fragments = %d want 3", c.Fragments())
	}
}

func TestMaxFragmentNodes(t *testing.T) {
	c := demoCluster(t, ClusterOptions{MaxFragmentNodes: 12})
	if c.Fragments() < 2 {
		t.Errorf("size-based fragmentation produced %d fragments", c.Fragments())
	}
	ans, err := c.Evaluate("client/name")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Errorf("answers = %v", ans)
	}
}

func TestTCPTransport(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 3, Sites: 2, Transport: TransportTCP, Seed: 9})
	ans, stats, err := c.Query(`//stock[buy/val() > 380]/code`, QueryOptions{Algorithm: "pax2", Annotations: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := values(ans); strings.Join(got, ",") != "GOOG" {
		t.Errorf("got %v", got)
	}
	if stats.MaxSiteVisits > 2 {
		t.Errorf("PaX2 visits = %d", stats.MaxSiteVisits)
	}
	// The one-visit Boolean protocol also runs over TCP.
	ok, err := c.EvaluateBool(`[//stock/code = "IBM"]`)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("IBM exists")
	}
}

func TestShipXMLOption(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 3, Seed: 2})
	ans, _, err := c.Query(`//stock[code = "IBM"]`, QueryOptions{ShipXML: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !strings.Contains(ans[0].XML, "<code>IBM</code>") {
		t.Errorf("answers = %+v", ans)
	}
}

func TestEvaluateBool(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Seed: 7})
	got, err := c.EvaluateBool(`[//stock/code = "GOOG"]`)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("GOOG exists")
	}
	got, err = c.EvaluateBool(`[//stock/code = "MSFT"]`)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("MSFT does not exist")
	}
	if _, err := c.EvaluateBool("]["); err == nil {
		t.Error("bad query must fail")
	}
}

func TestEvaluateCentralized(t *testing.T) {
	doc, _ := ParseDocumentString(clienteleXML)
	ans, err := EvaluateCentralized(doc, `client[country = "US"]/name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0].Value != "Anna" {
		t.Errorf("answers = %+v", ans)
	}
	if _, err := EvaluateCentralized(doc, "]["); err == nil {
		t.Error("bad query must fail")
	}
}

func TestCompileCheckAndNormalForm(t *testing.T) {
	if err := CompileCheck("//a[b]/c"); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := CompileCheck("]["); err == nil {
		t.Error("invalid query accepted")
	}
	nf, err := NormalForm(`client[country/text() = "us"]/name`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nf, "ε[country") {
		t.Errorf("normal form = %q", nf)
	}
	if _, err := NormalForm("]["); err == nil {
		t.Error("invalid query accepted by NormalForm")
	}
}

func TestStatsConsistency(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Seed: 11})
	_, stats, err := c.Query(`//broker[//stock/code = "GOOG"]/name`, QueryOptions{Algorithm: "pax3"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Algorithm != "PaX3" || stats.MaxSiteVisits > 3 || stats.Stages > 3 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.BytesSent <= 0 || stats.BytesReceived <= 0 || stats.Wall <= 0 {
		t.Errorf("cost counters not positive: %+v", stats)
	}
}

func TestReplicatedCluster(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, Replicas: 2})
	if got := c.Replicas(); got != 2 {
		t.Fatalf("Replicas() = %d, want 2", got)
	}
	if got := c.Sites(); got != 4 {
		t.Fatalf("Sites() = %d, want 4 (2 groups x 2 replicas)", got)
	}
	ans, stats, err := c.Query(`//broker[//stock/code = "GOOG"]/name`, QueryOptions{Algorithm: "pax3"})
	if err != nil {
		t.Fatal(err)
	}
	if got := values(ans); len(got) != 2 || got[0] != "CIBC" || got[1] != "Etrade" {
		t.Errorf("answers = %v", got)
	}
	if stats.Retries != 0 || stats.Failovers != 0 {
		t.Errorf("fault-free stats report %d retries / %d failovers", stats.Retries, stats.Failovers)
	}
	if stats.MaxSiteVisits > 3 {
		t.Errorf("MaxSiteVisits = %d > 3 on a fault-free replicated run", stats.MaxSiteVisits)
	}
	if fo := c.TransportStats().Failover; fo != (FailoverStats{}) {
		t.Errorf("fault-free failover counters = %+v", fo)
	}
}

func TestDrillSiteOutage(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, Replicas: 2})
	if err := c.DrillSiteOutage(99, 1, 2); err == nil {
		t.Error("drill against an absent site accepted")
	}
	if err := c.DrillSiteOutage(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	ans, stats, err := c.Query(`//broker[//stock/code = "GOOG"]/name`, QueryOptions{Algorithm: "pax3"})
	if err != nil {
		t.Fatalf("query did not survive the drilled outage: %v", err)
	}
	if got := values(ans); len(got) != 2 || got[0] != "CIBC" || got[1] != "Etrade" {
		t.Errorf("answers = %v", got)
	}
	if stats.Failovers == 0 || stats.Retries == 0 {
		t.Errorf("drilled outage left no failover trace: %d retries / %d failovers", stats.Retries, stats.Failovers)
	}
	if bound := 3 * (1 + stats.Retries); stats.MaxSiteVisits > bound {
		t.Errorf("MaxSiteVisits = %d > failover bound %d", stats.MaxSiteVisits, bound)
	}
	if fo := c.TransportStats().Failover; fo.Failovers == 0 {
		t.Errorf("lifetime failover counters unmoved: %+v", fo)
	}

	tcp := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, Replicas: 2, Transport: TransportTCP})
	if err := tcp.DrillSiteOutage(0, 1, 2); err == nil {
		t.Error("outage drill on a TCP fleet accepted; it is in-process only")
	}
}

func TestClusterRegistryRoundTrip(t *testing.T) {
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, Replicas: 2, Seed: 7})
	path := t.TempDir() + "/registry.json"
	if err := c.SaveRegistry(path); err != nil {
		t.Fatal(err)
	}
	// A cluster rebuilt from the registry (same fragmentation options) must
	// reproduce topology and answers.
	c2 := demoCluster(t, ClusterOptions{Fragments: 4, Seed: 7, Registry: path})
	if c2.Replicas() != 2 || c2.Sites() != 4 {
		t.Fatalf("registry cluster: %d replicas over %d sites, want 2 over 4", c2.Replicas(), c2.Sites())
	}
	want, err := c.Evaluate(`//broker[//stock/code = "GOOG"]/name`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Evaluate(`//broker[//stock/code = "GOOG"]/name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("registry cluster answered %v, original %v", values(got), values(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("answer %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// A registry that does not cover the fragmentation is rejected.
	if _, err := NewCluster(mustDoc(t), ClusterOptions{Fragments: 3, Seed: 7, Registry: path}); err == nil {
		t.Error("registry with the wrong fragment count accepted")
	}
	if _, err := NewCluster(mustDoc(t), ClusterOptions{Fragments: 4, Registry: path + ".absent"}); err == nil {
		t.Error("missing registry file accepted")
	}
}

func mustDoc(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseDocumentString(clienteleXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestRetryPolicyOnUnreplicatedCluster(t *testing.T) {
	// RetryMaxAttempts on an unreplicated cluster is valid (repairs session
	// loss in place) and changes nothing fault-free.
	c := demoCluster(t, ClusterOptions{Fragments: 4, Sites: 2, RetryMaxAttempts: 3, RetryBackoff: time.Millisecond})
	ans, stats, err := c.Query(`//name`, QueryOptions{Algorithm: "pax2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) == 0 || stats.Retries != 0 {
		t.Errorf("answers=%d retries=%d", len(ans), stats.Retries)
	}
}
