// Command docscheck is the documentation gate behind `make docs-check`.
// It enforces three properties the repo's docs promise:
//
//  1. Every exported identifier of the public paxq package (the repo
//     root) carries a doc comment — the API reference cannot silently
//     grow undocumented surface.
//  2. Every flag defined by the cmd/* binaries is mentioned (as "-name")
//     in the cmd/README.md operations guide or in ARCHITECTURE.md — the
//     guide cannot silently fall behind the binaries.
//  3. ARCHITECTURE.md's package map names every internal/* and cmd/*
//     package that exists — new subsystems must be mapped.
//
// Run from the repository root:
//
//	go run ./tools/docscheck
//
// Exits non-zero listing every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	var problems []string
	problems = append(problems, checkPublicDocs()...)
	problems = append(problems, checkFlagCoverage()...)
	problems = append(problems, checkPackageMap()...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck: "+p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkPublicDocs parses the root package and reports exported
// identifiers (types, funcs, methods, grouped consts/vars) without doc
// comments.
func checkPublicDocs() []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("parse root package: %v", err)}
	}
	pkg, ok := pkgs["paxq"]
	if !ok {
		return []string{"root package paxq not found (run from the repo root)"}
	}
	d := doc.New(pkg, "paxq", 0)
	var out []string
	missing := func(kind, name, docText string) {
		if strings.TrimSpace(docText) == "" {
			out = append(out, fmt.Sprintf("exported %s %s has no doc comment", kind, name))
		}
	}
	for _, v := range append(append([]*doc.Value{}, d.Consts...), d.Vars...) {
		for _, name := range v.Names {
			if ast.IsExported(name) {
				missing("value", name, v.Doc)
				break // one comment documents the whole grouped decl
			}
		}
	}
	for _, t := range d.Types {
		if ast.IsExported(t.Name) {
			missing("type", t.Name, t.Doc)
		}
		for _, m := range t.Methods {
			if ast.IsExported(m.Name) {
				missing("method", t.Name+"."+m.Name, m.Doc)
			}
		}
		for _, f := range t.Funcs {
			if ast.IsExported(f.Name) {
				missing("func", f.Name, f.Doc)
			}
		}
	}
	for _, f := range d.Funcs {
		if ast.IsExported(f.Name) {
			missing("func", f.Name, f.Doc)
		}
	}
	sort.Strings(out)
	return out
}

// flagDef matches the flag definitions the binaries use: typed
// flag.String/Bool/... calls and flag.Var registrations.
var flagDef = regexp.MustCompile(`flag\.(?:String|Bool|Int64|Int|Float64|Duration)\(\s*"([^"]+)"|flag\.Var\([^,]+,\s*"([^"]+)"`)

// checkFlagCoverage extracts every flag of every cmd/* binary and
// requires "-name" to appear in cmd/README.md or ARCHITECTURE.md.
func checkFlagCoverage() []string {
	guide, err := os.ReadFile("cmd/README.md")
	if err != nil {
		return []string{fmt.Sprintf("cmd/README.md: %v", err)}
	}
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		return []string{fmt.Sprintf("ARCHITECTURE.md: %v", err)}
	}
	docs := string(guide) + string(arch)
	files, err := filepath.Glob("cmd/*/*.go")
	if err != nil {
		return []string{err.Error()}
	}
	var out []string
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: %v", f, err))
			continue
		}
		binary := filepath.Base(filepath.Dir(f))
		for _, m := range flagDef.FindAllStringSubmatch(string(src), -1) {
			name := m[1]
			if name == "" {
				name = m[2]
			}
			if !strings.Contains(docs, "-"+name) {
				out = append(out, fmt.Sprintf("flag -%s of %s is not documented in cmd/README.md or ARCHITECTURE.md", name, binary))
			}
		}
	}
	sort.Strings(out)
	return out
}

// checkPackageMap requires ARCHITECTURE.md to name every internal/* and
// cmd/* package directory.
func checkPackageMap() []string {
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		return []string{fmt.Sprintf("ARCHITECTURE.md: %v", err)}
	}
	var out []string
	for _, root := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(root)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: %v", root, err))
			continue
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			ref := root + "/" + e.Name()
			if !strings.Contains(string(arch), ref) && !strings.Contains(string(arch), "`"+e.Name()+"`") {
				out = append(out, fmt.Sprintf("package %s is missing from ARCHITECTURE.md's package map", ref))
			}
		}
	}
	sort.Strings(out)
	return out
}
