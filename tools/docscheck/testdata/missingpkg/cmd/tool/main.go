// Command tool exists so the fixture's cmd/ directory is non-empty.
package main

func main() {}
