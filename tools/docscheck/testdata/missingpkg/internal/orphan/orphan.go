// Package orphan is present on disk but missing from the fixture's
// ARCHITECTURE.md package map, which checkPackageMap must flag.
package orphan
