// Package paxq is the fixture stand-in for the real public package: every
// exported identifier carries a doc comment, so checkPublicDocs must
// report nothing.
package paxq

// Answer is a documented exported type.
type Answer int

// Count is a documented exported method.
func (a Answer) Count() int { return int(a) }

// Evaluate is a documented exported function.
func Evaluate(q string) (Answer, error) { return 0, nil }

// Documented constants share one doc comment for the grouped decl.
const (
	ModeFast = iota
	ModeSafe
)
