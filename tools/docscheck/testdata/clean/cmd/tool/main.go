// Command tool is the fixture binary; its one flag is documented in
// cmd/README.md, so checkFlagCoverage must report nothing.
package main

import "flag"

var seed = flag.Int64("seed", 1, "fixture flag")

func main() { flag.Parse(); _ = seed }
