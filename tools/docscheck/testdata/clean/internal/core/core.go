// Package core exists so the fixture's internal/ directory is non-empty;
// checkPackageMap only looks at directory names.
package core
