// Package paxq is the fixture for the missing-doc-comment case: one
// exported function below has no doc comment and must be flagged.
package paxq

// Documented is fine and must not be flagged.
func Documented() {}

func Undocumented() {}
