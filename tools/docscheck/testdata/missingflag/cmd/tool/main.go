// Command tool defines a flag the fixture docs never mention.
package main

import "flag"

var verbose = flag.Bool("verbose", false, "fixture flag missing from the docs")

func main() { flag.Parse(); _ = verbose }
