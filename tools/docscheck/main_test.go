package main

import (
	"strings"
	"testing"
)

// one asserts that problems contains exactly one entry and that it
// mentions want.
func one(t *testing.T, problems []string, want string) {
	t.Helper()
	if len(problems) != 1 {
		t.Fatalf("got %d problems %q, want exactly 1", len(problems), problems)
	}
	if !strings.Contains(problems[0], want) {
		t.Fatalf("problem %q does not mention %q", problems[0], want)
	}
}

// none asserts a check came back clean.
func none(t *testing.T, problems []string) {
	t.Helper()
	if len(problems) != 0 {
		t.Fatalf("got problems %q, want none", problems)
	}
}

// TestCleanFixturePasses: a tree that keeps all three documentation
// promises produces no findings from any check.
func TestCleanFixturePasses(t *testing.T) {
	t.Chdir("testdata/clean")
	none(t, checkPublicDocs())
	none(t, checkFlagCoverage())
	none(t, checkPackageMap())
}

// TestMissingDocCommentFails: an exported function of the public package
// without a doc comment is flagged by name, and the documented one is
// not.
func TestMissingDocCommentFails(t *testing.T) {
	t.Chdir("testdata/missingdoc")
	problems := checkPublicDocs()
	one(t, problems, "exported func Undocumented has no doc comment")
	for _, p := range problems {
		if strings.Contains(p, "Documented ") {
			t.Errorf("documented identifier flagged: %q", p)
		}
	}
}

// TestUndocumentedFlagFails: a cmd/* flag absent from both cmd/README.md
// and ARCHITECTURE.md is flagged with its binary's name.
func TestUndocumentedFlagFails(t *testing.T) {
	t.Chdir("testdata/missingflag")
	one(t, checkFlagCoverage(), "flag -verbose of tool is not documented")
}

// TestMissingPackageMapEntryFails: a package directory missing from
// ARCHITECTURE.md's package map is flagged; the mapped one is not.
func TestMissingPackageMapEntryFails(t *testing.T) {
	t.Chdir("testdata/missingpkg")
	one(t, checkPackageMap(), "package internal/orphan is missing from ARCHITECTURE.md's package map")
}

// TestRealTreeIsClean runs all three checks against the actual repository
// root, mirroring what `make docs-check` gates.
func TestRealTreeIsClean(t *testing.T) {
	t.Chdir("../..")
	none(t, checkPublicDocs())
	none(t, checkFlagCoverage())
	none(t, checkPackageMap())
}
