// Package wiretag enforces the wire-codec discipline of the hand-written
// binary protocol (internal/pax/wiremsg.go):
//
//   - every dist.MsgTag constant is returned by exactly one WireTag
//     method — tags are part of the protocol, and a duplicated or orphaned
//     tag silently breaks frame dispatch;
//   - every type with a WireTag method carries the full codec triple:
//     AppendBinary AND DecodeBinary (an encode/decode pair that drifts
//     apart corrupts peers, not itself);
//   - every type with an AppendBinary/DecodeBinary pair declares a
//     WireTag — a tagless message can be encoded but never dispatched;
//   - every tagged message type is registered with dist.RegisterBinary in
//     an init function, so the decode side can construct it;
//   - every tagged message type is also registered with dist.Register in
//     an init function — the gob-twin codec decodes through gob's type
//     registry, so a message missing there rides the binary codec fine
//     and then fails the moment a gob-codec deployment (or the
//     differential gob twin) sees it — and, conversely, a gob-registered
//     type with no WireTag is a message the binary codec can never carry;
//   - encoding/gob is imported nowhere outside internal/dist: gob survives
//     purely as the differential gob-twin codec, and a stray gob import is
//     the first step of an untyped side channel around the tagged codec.
package wiretag

import (
	"go/ast"
	"strings"

	"paxq/tools/paxlint/analysis"
)

// Analyzer is the wiretag invariant suite.
var Analyzer = &analysis.Analyzer{
	Name: "wiretag",
	Doc:  "check wire-message tag uniqueness, encode/decode pair sync, registration, and the gob import ban",
	Run:  run,
}

// distPkg reports whether pkgPath is the transport package, where gob is
// legitimately used by the gob-twin codec.
func distPkg(pkgPath string) bool {
	return pkgPath == "internal/dist" || strings.HasSuffix(pkgPath, "/internal/dist")
}

// msgType accumulates what the package declares about one message type.
type msgType struct {
	wireTagPos    ast.Node // the WireTag method, if any
	tag           string   // the tag expression WireTag returns
	hasAppend     bool
	hasDecode     bool
	registered    bool     // dist.RegisterBinary
	registeredGob bool     // dist.Register (gob type registry)
	gobPos        ast.Node // the dist.Register call site
	appendPos     ast.Node
	decodePos     ast.Node
}

func run(pass *analysis.Pass) error {
	checkGobImports(pass)

	types := make(map[string]*msgType)
	get := func(name string) *msgType {
		if types[name] == nil {
			types[name] = &msgType{}
		}
		return types[name]
	}
	var tagConsts []*ast.Ident // declared dist.MsgTag constants, in order

	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				tagConsts = append(tagConsts, msgTagConsts(d)...)
			case *ast.FuncDecl:
				if d.Recv != nil {
					recordMethod(get, d)
					continue
				}
				if d.Name.Name == "init" {
					for _, name := range registeredTypes(d) {
						get(name).registered = true
					}
					for _, reg := range gobRegisteredTypes(d) {
						m := get(reg.name)
						m.registeredGob = true
						m.gobPos = reg.pos
					}
				}
			}
		}
	}

	// No wire-message declarations in this package: only the gob rule
	// applies (already checked above).
	if len(types) == 0 && len(tagConsts) == 0 {
		return nil
	}

	// Tag uniqueness: each tag expression must back exactly one message.
	tagUsers := make(map[string][]string)
	for name, m := range types {
		if m.tag != "" {
			tagUsers[m.tag] = append(tagUsers[m.tag], name)
		}
	}
	for name, m := range types {
		if m.wireTagPos != nil {
			if users := tagUsers[m.tag]; len(users) > 1 {
				pass.Reportf(m.wireTagPos.Pos(), "wire tag %s is returned by %d message types (%s): tags must be unique", m.tag, len(users), strings.Join(sortedCopy(users), ", "))
			}
			if !m.hasAppend || !m.hasDecode {
				pass.Reportf(m.wireTagPos.Pos(), "message %s has WireTag but an incomplete encode/decode pair (AppendBinary=%v, DecodeBinary=%v)", name, m.hasAppend, m.hasDecode)
			}
			if !m.registered {
				pass.Reportf(m.wireTagPos.Pos(), "message %s is never registered with dist.RegisterBinary in an init function", name)
			}
			if !m.registeredGob {
				pass.Reportf(m.wireTagPos.Pos(), "message %s is never registered with dist.Register in an init function: the gob-twin codec cannot decode it", name)
			}
		} else if m.hasAppend || m.hasDecode {
			pos := m.appendPos
			if pos == nil {
				pos = m.decodePos
			}
			pass.Reportf(pos.Pos(), "type %s has a binary encode/decode pair but no WireTag method: a tagless wire message cannot be dispatched", name)
		} else if m.registeredGob {
			pass.Reportf(m.gobPos.Pos(), "type %s is dist.Register-ed for the gob codec but declares no WireTag: the binary codec can never carry it", name)
		}
	}

	// Orphaned tag constants: declared but never returned by a WireTag.
	for _, c := range tagConsts {
		if strings.HasPrefix(c.Name, "_") {
			continue
		}
		if len(tagUsers[c.Name]) == 0 {
			pass.Reportf(c.Pos(), "wire tag constant %s is declared but returned by no WireTag method", c.Name)
		}
	}
	return nil
}

// checkGobImports flags encoding/gob imports outside internal/dist.
func checkGobImports(pass *analysis.Pass) {
	if distPkg(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"encoding/gob"` {
				pass.Reportf(imp.Pos(), "encoding/gob imported outside internal/dist: all wire traffic must flow through the tagged binary codec (gob lives only in the internal/dist gob-twin)")
			}
		}
	}
}

// msgTagConsts returns the constant names of a const declaration whose
// spec type is (or elides from) dist.MsgTag.
func msgTagConsts(d *ast.GenDecl) []*ast.Ident {
	if d.Tok.String() != "const" {
		return nil
	}
	var out []*ast.Ident
	isMsgTag := false
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if vs.Type != nil {
			isMsgTag = isSelector(vs.Type, "MsgTag")
		} else if vs.Values != nil {
			// An explicit untyped value starts a new run; only bare specs
			// inside an iota block inherit the previous spec's type.
			isMsgTag = false
		}
		if isMsgTag {
			out = append(out, vs.Names...)
		}
	}
	return out
}

// recordMethod folds one method declaration into the message table.
func recordMethod(get func(string) *msgType, d *ast.FuncDecl) {
	recv := receiverTypeName(d)
	if recv == "" {
		return
	}
	switch d.Name.Name {
	case "WireTag":
		m := get(recv)
		m.wireTagPos = d.Name
		m.tag = returnedTag(d)
	case "AppendBinary":
		m := get(recv)
		m.hasAppend = true
		m.appendPos = d.Name
	case "DecodeBinary":
		m := get(recv)
		m.hasDecode = true
		m.decodePos = d.Name
	}
}

// returnedTag extracts the expression returned by a WireTag body as a
// string key — an identifier for the usual `return tagFoo`, the literal
// text otherwise, so duplicated literal tags collide too.
func returnedTag(d *ast.FuncDecl) string {
	if d.Body == nil {
		return ""
	}
	for _, stmt := range d.Body.List {
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		return exprKey(ret.Results[0])
	}
	return ""
}

// registeredTypes extracts the type names registered by
// dist.RegisterBinary(func() dist.BinaryMessage { return new(T) }) (or
// &T{}) calls in an init body.
func registeredTypes(d *ast.FuncDecl) []string {
	var out []string
	ast.Inspect(d.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSelector(call.Fun, "RegisterBinary") || len(call.Args) != 1 {
			return true
		}
		lit, ok := call.Args[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.CallExpr: // new(T)
				if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
					if t, ok := e.Args[0].(*ast.Ident); ok {
						out = append(out, t.Name)
					}
				}
			case *ast.CompositeLit: // &T{} / T{}
				if t, ok := e.Type.(*ast.Ident); ok {
					out = append(out, t.Name)
				}
			}
			return true
		})
		return true
	})
	return out
}

// gobRegistration is one dist.Register call in an init body.
type gobRegistration struct {
	name string
	pos  ast.Node
}

// gobRegisteredTypes extracts the type names registered with the gob type
// registry by dist.Register(&T{}) (or T{} / new(T)) calls in an init body.
func gobRegisteredTypes(d *ast.FuncDecl) []gobRegistration {
	var out []gobRegistration
	ast.Inspect(d.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSelector(call.Fun, "Register") || len(call.Args) != 1 {
			return true
		}
		arg := call.Args[0]
		if unary, ok := arg.(*ast.UnaryExpr); ok {
			arg = unary.X
		}
		switch e := arg.(type) {
		case *ast.CompositeLit: // &T{} / T{}
			if t, ok := e.Type.(*ast.Ident); ok {
				out = append(out, gobRegistration{name: t.Name, pos: call})
			}
		case *ast.CallExpr: // new(T)
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
				if t, ok := e.Args[0].(*ast.Ident); ok {
					out = append(out, gobRegistration{name: t.Name, pos: call})
				}
			}
		}
		return true
	})
	return out
}

// receiverTypeName unwraps *T / T receivers to T.
func receiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) != 1 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isSelector reports whether e is an identifier or selector whose final
// name is name (MsgTag matches both MsgTag and dist.MsgTag).
func isSelector(e ast.Expr, name string) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == name
	case *ast.SelectorExpr:
		return x.Sel.Name == name
	}
	return false
}

// exprKey renders small expressions deterministically for map keys.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprKey(x.Fun) + "(…)"
	default:
		return "?"
	}
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
