// Fixture: the transport package itself, where the gob-twin codec
// legitimately imports encoding/gob. No diagnostics expected.
package dist

import (
	"bytes"
	"encoding/gob"
)

func gobEncode(v any) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(v)
	return buf.Bytes()
}
