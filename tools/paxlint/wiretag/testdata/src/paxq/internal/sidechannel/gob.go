// Fixture: a library package smuggling gob around the tagged codec.
package sidechannel

import (
	"bytes"
	"encoding/gob" // want `encoding/gob imported outside internal/dist`
)

func encode(v any) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(v)
	return buf.Bytes()
}
