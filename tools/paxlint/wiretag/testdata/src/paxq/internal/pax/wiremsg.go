// Fixture: wire-message declarations exercising every wiretag rule.
package pax

import "paxq/internal/dist"

const (
	tagGood dist.MsgTag = iota + 1
	tagDup
	tagLonely
	tagNoReg
	tagNoGob
	tagOrphan // want `wire tag constant tagOrphan is declared but returned by no WireTag method`
)

const plain = 7

type Good struct{}

func (m *Good) WireTag() dist.MsgTag                  { return tagGood }
func (m *Good) AppendBinary(b []byte) []byte          { return b }
func (m *Good) DecodeBinary(b []byte) ([]byte, error) { return b, nil }

type DupA struct{}

func (m *DupA) WireTag() dist.MsgTag                  { return tagDup } // want `wire tag tagDup is returned by 2 message types \(DupA, DupB\): tags must be unique`
func (m *DupA) AppendBinary(b []byte) []byte          { return b }
func (m *DupA) DecodeBinary(b []byte) ([]byte, error) { return b, nil }

type DupB struct{}

func (m *DupB) WireTag() dist.MsgTag                  { return tagDup } // want `wire tag tagDup is returned by 2 message types \(DupA, DupB\): tags must be unique`
func (m *DupB) AppendBinary(b []byte) []byte          { return b }
func (m *DupB) DecodeBinary(b []byte) ([]byte, error) { return b, nil }

type Lonely struct{}

func (m *Lonely) WireTag() dist.MsgTag         { return tagLonely } // want `message Lonely has WireTag but an incomplete encode/decode pair \(AppendBinary=true, DecodeBinary=false\)`
func (m *Lonely) AppendBinary(b []byte) []byte { return b }

type NoReg struct{}

func (m *NoReg) WireTag() dist.MsgTag                  { return tagNoReg } // want `message NoReg is never registered with dist.RegisterBinary in an init function`
func (m *NoReg) AppendBinary(b []byte) []byte          { return b }
func (m *NoReg) DecodeBinary(b []byte) ([]byte, error) { return b, nil }

type NoGob struct{}

func (m *NoGob) WireTag() dist.MsgTag                  { return tagNoGob } // want `message NoGob is never registered with dist.Register in an init function: the gob-twin codec cannot decode it`
func (m *NoGob) AppendBinary(b []byte) []byte          { return b }
func (m *NoGob) DecodeBinary(b []byte) ([]byte, error) { return b, nil }

type Tagless struct{}

func (m *Tagless) AppendBinary(b []byte) []byte          { return b } // want `type Tagless has a binary encode/decode pair but no WireTag method: a tagless wire message cannot be dispatched`
func (m *Tagless) DecodeBinary(b []byte) ([]byte, error) { return b, nil }

type GobOnly struct{}

func init() {
	dist.RegisterBinary(func() dist.BinaryMessage { return new(Good) })
	dist.RegisterBinary(func() dist.BinaryMessage { return new(DupA) })
	dist.RegisterBinary(func() dist.BinaryMessage { return new(DupB) })
	dist.RegisterBinary(func() dist.BinaryMessage { return new(Lonely) })
	dist.RegisterBinary(func() dist.BinaryMessage { return new(NoGob) })
	dist.RegisterBinary(func() dist.BinaryMessage { return new(Tagless) })
	dist.Register(&Good{})
	dist.Register(&DupA{})
	dist.Register(&DupB{})
	dist.Register(&Lonely{})
	dist.Register(&NoReg{})
	dist.Register(&GobOnly{}) // want `type GobOnly is dist.Register-ed for the gob codec but declares no WireTag: the binary codec can never carry it`
}
