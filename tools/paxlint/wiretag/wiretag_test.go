package wiretag_test

import (
	"testing"

	"paxq/tools/paxlint/analysistest"
	"paxq/tools/paxlint/wiretag"
)

func TestWiretag(t *testing.T) {
	analysistest.Run(t, "testdata", wiretag.Analyzer,
		"paxq/internal/pax",
		"paxq/internal/sidechannel",
		"paxq/internal/dist",
	)
}
