// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring (a useful subset
// of) golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// A fixture package lives under <testdata>/src/<import/path>/ and
// annotates the lines where diagnostics are expected:
//
//	panic("boom") // want `panic in library code`
//
// Each string after // want is a regular expression, quoted either with
// backquotes or double quotes; a line may expect several diagnostics.
// The test fails on any unexpected diagnostic and on any unmatched
// expectation, so fixtures express positives and negatives in one tree.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"paxq/tools/paxlint/analysis"
)

// expectation is one // want regexp, tracked to ensure it matched.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the quoted regexps of one // want comment tail.
func parseWants(tail string) ([]string, error) {
	var out []string
	for i := 0; i < len(tail); {
		switch tail[i] {
		case ' ', '\t':
			i++
		case '`':
			j := strings.IndexByte(tail[i+1:], '`')
			if j < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", tail)
			}
			out = append(out, tail[i+1:i+1+j])
			i += j + 2
		case '"':
			rest := tail[i:]
			// Find the closing quote of a Go string literal.
			end := 1
			for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
				end++
			}
			if end >= len(rest) {
				return nil, fmt.Errorf("unterminated quote in %q", tail)
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want literal %q: %v", rest[:end+1], err)
			}
			out = append(out, s)
			i += end + 1
		default:
			return nil, fmt.Errorf("unexpected %q in want comment %q", tail[i], tail)
		}
	}
	return out, nil
}

// Run loads each fixture package under testdata/src, applies a, and
// reports mismatches between diagnostics and // want expectations as test
// errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkg := range pkgPaths {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			dir := filepath.Join(testdata, "src", filepath.FromSlash(pkg))
			fset := token.NewFileSet()
			pass, err := analysis.LoadDir(fset, dir, pkg)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			if pass == nil {
				t.Fatalf("fixture %s holds no Go files", dir)
			}

			// Collect expectations per file:line from the files' comments.
			wants := make(map[string]map[int][]*expectation)
			for _, f := range pass.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						m := wantRe.FindStringSubmatch(c.Text)
						if m == nil {
							continue
						}
						pos := fset.Position(c.Pos())
						res, err := parseWants(strings.TrimSpace(m[1]))
						if err != nil {
							t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
						}
						for _, r := range res {
							re, err := regexp.Compile(r)
							if err != nil {
								t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, r, err)
							}
							if wants[pos.Filename] == nil {
								wants[pos.Filename] = make(map[int][]*expectation)
							}
							wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{re: re, raw: r})
						}
					}
				}
			}

			diags, err := analysis.RunAnalyzer(a, pass)
			if err != nil {
				t.Fatalf("run %s on %s: %v", a.Name, pkg, err)
			}
			for _, d := range diags {
				exps := wants[d.Pos.Filename][d.Pos.Line]
				found := false
				for _, e := range exps {
					if !e.matched && e.re.MatchString(d.Message) {
						e.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
				}
			}
			for file, lines := range wants {
				for line, exps := range lines {
					for _, e := range exps {
						if !e.matched {
							t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, e.raw)
						}
					}
				}
			}
		})
	}
}
