// Fixture: root contexts and transport calls in library code.
package pax

import "context"

type transport interface {
	Call(ctx context.Context, to int, req any) (any, error)
}

func bad(tr transport) {
	ctx := context.Background() // want `context\.Background\(\) in library code`
	_ = ctx
	_, _ = tr.Call(context.TODO(), 1, nil) // want `context\.TODO\(\) passed directly into Call` `context\.TODO\(\) in library code`
}

func good(ctx context.Context, tr transport) {
	_, _ = tr.Call(ctx, 1, nil)
}

func allowed() context.Context {
	//paxlint:allow ctxflow(public blocking wrapper owns its root context)
	return context.Background()
}
