// Fixture: a command owns its root context, but must still flow it into
// the transport rather than minting a fresh one at the call site.
package main

import "context"

type transport interface {
	Call(ctx context.Context, to int, req any) (any, error)
}

func run(tr transport) {
	ctx := context.Background()
	_, _ = tr.Call(ctx, 1, nil)
	_, _ = tr.Call(context.Background(), 1, nil) // want `context\.Background\(\) passed directly into Call`
}

func main() {}
