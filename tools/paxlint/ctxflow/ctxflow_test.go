package ctxflow_test

import (
	"testing"

	"paxq/tools/paxlint/analysistest"
	"paxq/tools/paxlint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"paxq/internal/pax",
		"paxq/cmd/tool",
	)
}
