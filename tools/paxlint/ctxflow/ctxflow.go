// Package ctxflow enforces end-to-end context propagation (the PR 3
// discipline): deadlines and cancellation must flow from the caller all
// the way into every transport round trip.
//
//   - context.Background() and context.TODO() are forbidden in library
//     code (non-test files of non-main packages): a fresh root context in
//     the middle of a call chain silently detaches everything below it
//     from the caller's deadline. Commands own their root context, and
//     tests fabricate contexts freely, so both are exempt. The public
//     blocking convenience wrappers that deliberately start a root
//     context carry reviewed allow markers.
//   - a Transport.Call / Broadcast invocation must pass a flowed-in
//     context: handing them a context.Background()/TODO() call expression
//     directly defeats the transport's deadline poisoning even in code
//     where a root context is otherwise legitimate.
package ctxflow

import (
	"go/ast"

	"paxq/tools/paxlint/analysis"
)

// Analyzer is the context-propagation invariant suite.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background()/TODO() in library code and require flowed contexts into Transport.Call/Broadcast",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		libCode := !pass.IsMainPkg()
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if libCode {
				if name, ok := rootContextCall(call); ok {
					pass.Reportf(call.Pos(), "context.%s() in library code: thread the caller's context instead of starting a fresh root", name)
					return true
				}
			}
			checkTransportCall(pass, call)
			return true
		})
	}
	return nil
}

// rootContextCall matches context.Background() / context.TODO().
func rootContextCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "context" {
		return "", false
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name, true
	}
	return "", false
}

// checkTransportCall flags Call/Broadcast invocations whose context
// argument is a direct root-context call expression. Transport.Call has
// the shape Call(ctx, site, req); dist.Broadcast is
// Broadcast(ctx, tr, sites, mk).
func checkTransportCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	isCall := sel.Sel.Name == "Call" && len(call.Args) == 3
	isBroadcast := sel.Sel.Name == "Broadcast" && len(call.Args) >= 3
	if !isCall && !isBroadcast {
		return
	}
	if arg, ok := call.Args[0].(*ast.CallExpr); ok {
		if name, ok := rootContextCall(arg); ok {
			pass.Reportf(arg.Pos(), "context.%s() passed directly into %s: transport calls must receive the flowed-in context", name, sel.Sel.Name)
		}
	}
}
