// Package analysis is a self-contained, standard-library-only skeleton of
// the golang.org/x/tools/go/analysis model: an Analyzer inspects one
// package's syntax through a Pass and reports Diagnostics. The build
// environment of this repository is offline, so instead of depending on
// x/tools the repo vendors the minimal slice of the model its own
// analyzers need — purely syntactic passes over parsed files, a per-line
// suppression marker, and a deterministic diagnostic ordering.
//
// The suppression grammar is
//
//	//paxlint:allow <analyzer>(<reason>)
//
// placed either on the offending line or on the line directly above it.
// The reason is mandatory: an allow marker is a reviewed justification,
// not an off switch, and a marker with an empty reason is itself a
// diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in allow markers.
	Name string
	// Doc is the one-paragraph description printed by the driver.
	Doc string
	// Run inspects the pass's package and reports findings via
	// Pass.Reportf. The error return is for operational failures (never
	// for findings).
	Run func(*Pass) error
}

// Pass carries one package's parsed syntax to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds every parsed file of the package directory, test files
	// included; analyzers that exempt tests filter with IsTestFile.
	Files []*ast.File
	// PkgPath is the package's import path (e.g. "paxq/internal/pax").
	// Fixture packages use the path of their testdata/src subdirectory, so
	// path-sensitive rules are testable.
	PkgPath string
	// PkgName is the package name of the non-test files ("main" marks a
	// command).
	PkgName string

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Position
	Message string
}

// Reportf records a finding against pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// IsMainPkg reports whether the pass's package is a command.
func (p *Pass) IsMainPkg() bool { return p.PkgName == "main" }

// allowMarker matches the suppression grammar. The reason group is
// deliberately greedy: everything between the first "(" and the last ")"
// of the marker is the justification.
var allowMarker = regexp.MustCompile(`^//paxlint:allow\s+([A-Za-z0-9_]+)\((.*)\)\s*$`)

// malformedMarker catches markers that parse as an intent to suppress but
// violate the grammar (no analyzer name, missing parentheses, ...).
var malformedMarker = regexp.MustCompile(`^//paxlint:allow\b`)

// allowSet indexes, per file line, the analyzer names allowed on that
// line. A marker covers its own line and the line below, so both
//
//	foo() //paxlint:allow nopanic(reason)
//
// and
//
//	//paxlint:allow nopanic(reason)
//	foo()
//
// suppress a nopanic finding on foo's line.
type allowSet map[int]map[string]bool

// collectAllows scans every comment of the pass for allow markers,
// reporting malformed ones as diagnostics of the driver itself (they are
// attached to the running analyzer's pass, so every analyzer surfaces
// them — a broken marker must never silently suppress).
func collectAllows(p *Pass) allowSet {
	out := make(allowSet)
	add := func(line int, name string) {
		if out[line] == nil {
			out[line] = make(map[string]bool)
		}
		out[line][name] = true
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !malformedMarker.MatchString(text) {
					continue
				}
				m := allowMarker.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					p.Reportf(c.Pos(), "malformed paxlint:allow marker (want //paxlint:allow <analyzer>(<reason>) with a non-empty reason): %s", text)
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				add(line, m[1])
				add(line+1, m[1])
			}
		}
	}
	return out
}

// RunAnalyzer executes a on pass and returns the surviving diagnostics:
// findings on lines carrying a matching allow marker are suppressed,
// malformed markers are reported, and the result is ordered by position.
func RunAnalyzer(a *Analyzer, pass *Pass) ([]Diagnostic, error) {
	pass.Analyzer = a
	pass.diags = nil
	allows := collectAllows(pass)
	markerDiags := len(pass.diags) // malformed-marker findings are never suppressed
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %v", a.Name, pass.PkgPath, err)
	}
	kept := pass.diags[:markerDiags]
	for _, d := range pass.diags[markerDiags:] {
		if allows[d.Pos.Line][a.Name] {
			continue
		}
		kept = append(kept, d)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}
