package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadDir parses every .go file of one package directory into a Pass.
// pkgPath is the import path attributed to the package (used by
// path-sensitive rules).
func LoadDir(fset *token.FileSet, dir, pkgPath string) (*Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pass := &Pass{Fset: fset, PkgPath: pkgPath}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filepath.Join(dir, e.Name()), err)
		}
		pass.Files = append(pass.Files, f)
		if pass.PkgName == "" && !strings.HasSuffix(e.Name(), "_test.go") {
			pass.PkgName = f.Name.Name
		}
	}
	if len(pass.Files) == 0 {
		return nil, nil
	}
	if pass.PkgName == "" { // test-only directory
		pass.PkgName = strings.TrimSuffix(pass.Files[0].Name.Name, "_test")
	}
	return pass, nil
}

// LoadModule walks the module rooted at root (the directory holding
// go.mod) and returns one Pass per package directory, ordered by import
// path. modulePath is the module's path from go.mod; testdata trees,
// hidden directories and vendored code are skipped.
func LoadModule(root, modulePath string) ([]*Pass, error) {
	fset := token.NewFileSet()
	var passes []*Pass
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkgPath := modulePath
		if rel != "." {
			pkgPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		pass, err := LoadDir(fset, path, pkgPath)
		if err != nil {
			return err
		}
		if pass != nil {
			passes = append(passes, pass)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(passes, func(i, j int) bool { return passes[i].PkgPath < passes[j].PkgPath })
	return passes, nil
}

// ModulePath reads the module path out of a go.mod file.
func ModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
