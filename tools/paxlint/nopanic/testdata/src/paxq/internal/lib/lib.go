// Fixture: panics in library code, with the Must*/init exemptions and
// the allow-marker escape hatch (valid and malformed).
package lib

func Parse(s string) (int, error) {
	if s == "" {
		panic("empty input") // want `panic in library code: return a typed error`
	}
	return len(s), nil
}

func MustParse(s string) int {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

func init() {
	if false {
		panic("registration conflict")
	}
}

type codec struct{}

func (codec) decode(b []byte) byte {
	if len(b) == 0 {
		//paxlint:allow nopanic(unreachable: callers bounds-check first)
		panic("empty buffer")
	}
	return b[0]
}

//paxlint:allow nopanic() // want `malformed paxlint:allow marker`
func oops() {
	panic("x") // want `panic in library code: return a typed error`
}
