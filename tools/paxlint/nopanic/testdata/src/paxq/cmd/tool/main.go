// Fixture: a command may panic (it owns the process). No diagnostics
// expected.
package main

func main() {
	panic("commands may crash loudly")
}
