package nopanic_test

import (
	"testing"

	"paxq/tools/paxlint/analysistest"
	"paxq/tools/paxlint/nopanic"
)

func TestNopanic(t *testing.T) {
	analysistest.Run(t, "testdata", nopanic.Analyzer,
		"paxq/internal/lib",
		"paxq/cmd/tool",
	)
}
