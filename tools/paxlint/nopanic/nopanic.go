// Package nopanic continues the PR 2/3 panic-to-error migration by
// construction: library packages must not panic. A panic that escapes a
// site handler or the coordinator turns one malformed query into a dead
// process; the transport and the engine convert failures to errors, and
// new code must start from errors, not be migrated later.
//
// Exempt by design:
//
//   - functions and methods whose name starts with "Must" — the
//     documented escape hatch whose contract IS panicking on misuse;
//   - init functions — registration-time misuse (duplicate wire tags,
//     conflicting codec names) must fail the process before it serves;
//   - main packages and test files;
//   - sites annotated //paxlint:allow nopanic(reason) — the reviewed
//     list of invariant violations that are unreachable by construction
//     (corrupt in-memory values no input can produce).
package nopanic

import (
	"go/ast"
	"strings"

	"paxq/tools/paxlint/analysis"
)

// Analyzer is the no-panic invariant.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic in library code outside Must* helpers, init functions, and reviewed allow markers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.IsMainPkg() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					pass.Reportf(call.Pos(), "panic in library code: return a typed error (or justify with //paxlint:allow nopanic(reason) if unreachable by construction)")
				}
				return true
			})
		}
	}
	return nil
}
