// Command paxlint is the repository's invariant multichecker: it runs
// the five analyzers under tools/paxlint/ over every package of the
// enclosing module and fails the build on any finding.
//
// Usage (from anywhere inside the module):
//
//	go run ./tools/paxlint          # check the whole module
//	go run ./tools/paxlint -list    # print the analyzers and exit
//
// Diagnostics print as path:line:col: analyzer: message, relative to
// the module root. Suppression uses reviewed allow markers — see
// tools/README.md for the //paxlint:allow <analyzer>(<reason>) grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"paxq/tools/paxlint/analysis"
	"paxq/tools/paxlint/ctxflow"
	"paxq/tools/paxlint/ledger"
	"paxq/tools/paxlint/lockheld"
	"paxq/tools/paxlint/nopanic"
	"paxq/tools/paxlint/wiretag"
)

// analyzers is the full invariant suite, in report order.
var analyzers = []*analysis.Analyzer{
	wiretag.Analyzer,
	ledger.Analyzer,
	ctxflow.Analyzer,
	nopanic.Analyzer,
	lockheld.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paxlint:", err)
		os.Exit(2)
	}
	modPath, err := analysis.ModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "paxlint:", err)
		os.Exit(2)
	}
	passes, err := analysis.LoadModule(root, modPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paxlint:", err)
		os.Exit(2)
	}

	findings := 0
	for _, a := range analyzers {
		for _, pass := range passes {
			diags, err := analysis.RunAnalyzer(a, pass)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paxlint:", err)
				os.Exit(2)
			}
			for _, d := range diags {
				findings++
				fmt.Printf("%s:%d:%d: %s: %s\n", relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, a.Name, d.Message)
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "paxlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relPath renders filename relative to root when possible (keeps the
// diagnostic lines stable across checkouts).
func relPath(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return rel
	}
	return filename
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
