// Fixture: the transport package owns the shared counters, so Metrics()
// and Reset() are legitimate here. No diagnostics expected.
package dist

type Metrics struct{}

func (m *Metrics) Reset() {}

type transport struct{ m Metrics }

func (t *transport) Metrics() *Metrics { return &t.m }

func resetCounters(t *transport) {
	t.Metrics().Reset()
}
