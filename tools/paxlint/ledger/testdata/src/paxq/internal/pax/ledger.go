// Fixture: shared-counter access and wall-clock timing in library code.
package pax

import "time"

type Counters struct{}

func (c *Counters) Reset() {}

type transport interface {
	Metrics() *Counters
}

func bad(tr transport, start time.Time) {
	m := tr.Metrics()         // want `shared transport metrics accessed outside internal/dist`
	m.Reset()                 // want `Reset\(\) of shared counters outside internal/dist`
	_ = time.Now().Sub(start) // want `time\.Now\(\)\.Sub\(t\) re-derives a duration from a wall-clock reading`
}

func wall(a, b time.Time) int64 {
	return a.UnixNano() - b.UnixNano() // want `UnixNano\(\) difference is wall-clock arithmetic`
}

func good(start time.Time) time.Duration {
	return time.Since(start)
}

func snapshot(tr transport) *Counters {
	//paxlint:allow ledger(read-only observability snapshot)
	return tr.Metrics()
}

// Batch aggregation path: splitting one envelope's cost across members
// must stay in per-call arithmetic — never read the shared lifetime
// counters to attribute batch costs to a query.
func splitBatchCost(total int64, members int) []int64 {
	out := make([]int64, members)
	for i := range out {
		out[i] = total / int64(members)
	}
	return out
}

func badBatchAttribution(tr transport, start time.Time) []int64 {
	m := tr.Metrics() // want `shared transport metrics accessed outside internal/dist`
	_ = m
	_ = time.Now().Sub(start) // want `time\.Now\(\)\.Sub\(t\) re-derives a duration from a wall-clock reading`
	return splitBatchCost(int64(time.Since(start)), 2)
}

func conservationCheck(tr transport, perQuerySum int64) bool {
	//paxlint:allow ledger(cost-conservation check compares per-query sums against the lifetime totals read-only)
	_ = tr.Metrics()
	return perQuerySum >= 0
}

// Failover path: the aborted-call attribution rule says a replayed or
// failed-but-completed call's cost is charged to the query that caused
// it, from the CallCost the call itself returned — per-call arithmetic,
// exactly like the batch split above.
func chargeFailedAttempt(perQuery *int64, callCost int64) {
	*perQuery += callCost
}

// Reconstructing a failed attempt's cost from the shared lifetime
// counters instead would double-count it against the next conservation
// check — the analyzer rejects the read.
func badAbortedCallAttribution(tr transport, perQuery *int64) {
	m := tr.Metrics() // want `shared transport metrics accessed outside internal/dist`
	_ = m
	*perQuery++
}

// Edit path: a fragment edit rides no batch envelope and no failover
// replay, so its wire cost lands directly on the transport totals — the
// edit's own ledger (EditResult.BytesSent/BytesRecv/Compute) must be
// folded from the CallCosts of the per-member calls it issued, exactly
// like a query's per-stage arithmetic.
func chargeEditCall(editSent, editRecv *int64, callSent, callRecv int64) {
	*editSent += callSent
	*editRecv += callRecv
}

// Deriving an edit's cost by diffing the shared lifetime counters around
// the broadcast races with concurrent queries' traffic — the analyzer
// rejects the read just as it does on the query path.
func badEditAttribution(tr transport, editSent *int64) {
	m := tr.Metrics() // want `shared transport metrics accessed outside internal/dist`
	_ = m
	*editSent++
}

// A retried edit attempt (replica recovering mid-broadcast) charges every
// attempt's CallCost to the edit, timed monotonically.
func timeEditRetry(start time.Time) time.Duration {
	return time.Since(start)
}

func badEditRetryTiming(start time.Time) int64 {
	return time.Now().UnixNano() - start.UnixNano() // want `UnixNano\(\) difference is wall-clock arithmetic`
}

// The mutation differential's conservation check is a reviewed read-only
// comparison: Σ (per-query ledgers + per-edit ledgers) vs the lifetime
// totals, valid only on schedules where every call completed.
func editScheduleConservation(tr transport, querySum, editSum int64, aborted int) bool {
	if aborted > 0 {
		return true
	}
	//paxlint:allow ledger(edit-differential conservation: Σ query+edit ledgers compared against the lifetime totals read-only)
	_ = tr.Metrics()
	return querySum+editSum >= 0
}

// The fault harness's conservation check is the one legitimate reader:
// Σ per-query ledgers vs the lifetime totals IS the invariant, asserted
// only on abort-free schedules (an aborted query's partial costs stay on
// the lifetime side alone).
func faultScheduleConservation(tr transport, perQuerySum int64, aborted int) bool {
	if aborted > 0 {
		return true
	}
	//paxlint:allow ledger(fault-harness conservation check: comparing per-query sums against the lifetime totals read-only)
	_ = tr.Metrics()
	return perQuerySum >= 0
}
