// Fixture: shared-counter access and wall-clock timing in library code.
package pax

import "time"

type Counters struct{}

func (c *Counters) Reset() {}

type transport interface {
	Metrics() *Counters
}

func bad(tr transport, start time.Time) {
	m := tr.Metrics()         // want `shared transport metrics accessed outside internal/dist`
	m.Reset()                 // want `Reset\(\) of shared counters outside internal/dist`
	_ = time.Now().Sub(start) // want `time\.Now\(\)\.Sub\(t\) re-derives a duration from a wall-clock reading`
}

func wall(a, b time.Time) int64 {
	return a.UnixNano() - b.UnixNano() // want `UnixNano\(\) difference is wall-clock arithmetic`
}

func good(start time.Time) time.Duration {
	return time.Since(start)
}

func snapshot(tr transport) *Counters {
	//paxlint:allow ledger(read-only observability snapshot)
	return tr.Metrics()
}

// Batch aggregation path: splitting one envelope's cost across members
// must stay in per-call arithmetic — never read the shared lifetime
// counters to attribute batch costs to a query.
func splitBatchCost(total int64, members int) []int64 {
	out := make([]int64, members)
	for i := range out {
		out[i] = total / int64(members)
	}
	return out
}

func badBatchAttribution(tr transport, start time.Time) []int64 {
	m := tr.Metrics() // want `shared transport metrics accessed outside internal/dist`
	_ = m
	_ = time.Now().Sub(start) // want `time\.Now\(\)\.Sub\(t\) re-derives a duration from a wall-clock reading`
	return splitBatchCost(int64(time.Since(start)), 2)
}

func conservationCheck(tr transport, perQuerySum int64) bool {
	//paxlint:allow ledger(cost-conservation check compares per-query sums against the lifetime totals read-only)
	_ = tr.Metrics()
	return perQuerySum >= 0
}

// Failover path: the aborted-call attribution rule says a replayed or
// failed-but-completed call's cost is charged to the query that caused
// it, from the CallCost the call itself returned — per-call arithmetic,
// exactly like the batch split above.
func chargeFailedAttempt(perQuery *int64, callCost int64) {
	*perQuery += callCost
}

// Reconstructing a failed attempt's cost from the shared lifetime
// counters instead would double-count it against the next conservation
// check — the analyzer rejects the read.
func badAbortedCallAttribution(tr transport, perQuery *int64) {
	m := tr.Metrics() // want `shared transport metrics accessed outside internal/dist`
	_ = m
	*perQuery++
}

// The fault harness's conservation check is the one legitimate reader:
// Σ per-query ledgers vs the lifetime totals IS the invariant, asserted
// only on abort-free schedules (an aborted query's partial costs stay on
// the lifetime side alone).
func faultScheduleConservation(tr transport, perQuerySum int64, aborted int) bool {
	if aborted > 0 {
		return true
	}
	//paxlint:allow ledger(fault-harness conservation check: comparing per-query sums against the lifetime totals read-only)
	_ = tr.Metrics()
	return perQuerySum >= 0
}
