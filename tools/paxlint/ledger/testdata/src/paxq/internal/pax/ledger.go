// Fixture: shared-counter access and wall-clock timing in library code.
package pax

import "time"

type Counters struct{}

func (c *Counters) Reset() {}

type transport interface {
	Metrics() *Counters
}

func bad(tr transport, start time.Time) {
	m := tr.Metrics()         // want `shared transport metrics accessed outside internal/dist`
	m.Reset()                 // want `Reset\(\) of shared counters outside internal/dist`
	_ = time.Now().Sub(start) // want `time\.Now\(\)\.Sub\(t\) re-derives a duration from a wall-clock reading`
}

func wall(a, b time.Time) int64 {
	return a.UnixNano() - b.UnixNano() // want `UnixNano\(\) difference is wall-clock arithmetic`
}

func good(start time.Time) time.Duration {
	return time.Since(start)
}

func snapshot(tr transport) *Counters {
	//paxlint:allow ledger(read-only observability snapshot)
	return tr.Metrics()
}
