// Package ledger protects the per-query cost-conservation guarantee
// (Σ per-query ledgers = transport lifetime totals):
//
//   - outside internal/dist, no non-test code may touch the shared
//     transport counters: a call to Metrics() — and above all a Reset() —
//     on the shared instance is exactly the PR 2 race class in which one
//     query zeroes the counters another query is accounting against.
//     Per-query accounting derives from CallCosts; the one legitimate
//     read-only snapshot (Cluster.TransportStats) carries a reviewed
//     allow marker.
//   - compute-timing code must measure with the monotonic clock:
//     time.Now().Sub(t) and UnixNano() differences re-derive durations
//     from wall-clock readings, which jump under clock adjustment and
//     would let a ComputeNanos ledger drift from the transport's totals.
//     time.Since(t) (and t2.Sub(t1) on Times that both carry a monotonic
//     reading) is the accepted form.
//
// Test files are exempt: conservation tests legitimately read the shared
// counters to assert the invariant this analyzer protects.
package ledger

import (
	"go/ast"
	"go/token"
	"strings"

	"paxq/tools/paxlint/analysis"
)

// Analyzer is the ledger-conservation invariant suite.
var Analyzer = &analysis.Analyzer{
	Name: "ledger",
	Doc:  "forbid shared transport-metrics access outside internal/dist and non-monotonic compute timing",
	Run:  run,
}

func distPkg(pkgPath string) bool {
	return pkgPath == "internal/dist" || strings.HasSuffix(pkgPath, "/internal/dist")
}

func run(pass *analysis.Pass) error {
	inDist := distPkg(pass.PkgPath)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x, inDist)
			case *ast.BinaryExpr:
				checkWallArithmetic(pass, x)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, inDist bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Metrics":
		if !inDist && len(call.Args) == 0 {
			pass.Reportf(sel.Sel.Pos(), "shared transport metrics accessed outside internal/dist: per-query accounting must derive from CallCosts, not the shared counters")
		}
	case "Reset":
		if !inDist && len(call.Args) == 0 {
			pass.Reportf(sel.Sel.Pos(), "Reset() of shared counters outside internal/dist: resetting transport metrics races with concurrent queries' ledgers")
		}
	case "Sub":
		// time.Now().Sub(t): a wall-clock reading consumed immediately —
		// time.Since(t) is the monotonic-safe spelling.
		if inner, ok := sel.X.(*ast.CallExpr); ok && isPkgCall(inner, "time", "Now") && len(call.Args) == 1 {
			pass.Reportf(sel.Sel.Pos(), "time.Now().Sub(t) re-derives a duration from a wall-clock reading; use the monotonic time.Since(t)")
		}
	}
}

// checkWallArithmetic flags t1.UnixNano() - t2.UnixNano(): the conversion
// to a wall-clock integer drops the monotonic reading, so the difference
// is not adjustment-safe.
func checkWallArithmetic(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.SUB {
		return
	}
	if isMethodCall(bin.X, "UnixNano") && isMethodCall(bin.Y, "UnixNano") {
		pass.Reportf(bin.OpPos, "UnixNano() difference is wall-clock arithmetic; compute ledgers must use the monotonic time.Since")
	}
}

func isPkgCall(call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

func isMethodCall(e ast.Expr, name string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}
