package ledger_test

import (
	"testing"

	"paxq/tools/paxlint/analysistest"
	"paxq/tools/paxlint/ledger"
)

func TestLedger(t *testing.T) {
	analysistest.Run(t, "testdata", ledger.Analyzer,
		"paxq/internal/pax",
		"paxq/internal/dist",
	)
}
