// Fixture: transport calls and I/O under held mutexes, plus the shapes
// the analyzer must NOT flag (lock-scoped state access, early release in
// a branch, goroutines with their own lock scope).
package lib

import (
	"context"
	"net"
	"os"
	"sync"
)

type transport interface {
	Call(ctx context.Context, to int, req any) (any, error)
}

type broadcaster interface {
	Broadcast(ctx context.Context, sites []int, req any) error
}

type server struct {
	mu    sync.Mutex
	state map[int]int
}

func (s *server) badCall(ctx context.Context, tr transport) {
	s.mu.Lock()
	_, _ = tr.Call(ctx, 1, nil) // want `transport Call while holding s\.mu`
	s.mu.Unlock()
}

func (s *server) goodCall(ctx context.Context, tr transport) {
	s.mu.Lock()
	v := s.state[1]
	s.mu.Unlock()
	_, _ = tr.Call(ctx, v, nil)
}

func (s *server) badDefer(ctx context.Context, tr transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = tr.Call(ctx, 1, nil) // want `transport Call while holding s\.mu`
}

func (s *server) badIO(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = os.ReadFile(name)     // want `os\.ReadFile while holding s\.mu`
	_, _ = net.Dial("tcp", name) // want `net\.Dial while holding s\.mu`
}

func (s *server) branchRelease(ctx context.Context, tr transport, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		_, _ = tr.Call(ctx, 1, nil)
		return
	}
	s.mu.Unlock()
}

func (s *server) goroutineScope(ctx context.Context, tr transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_, _ = tr.Call(ctx, 1, nil)
	}()
}

func broadcastUnderRead(ctx context.Context, mu *sync.RWMutex, b broadcaster) {
	mu.RLock()
	_ = b.Broadcast(ctx, nil, nil) // want `transport Broadcast while holding mu`
	mu.RUnlock()
}

type pair interface {
	Call(a, b int)
}

func (s *server) twoArgCallOK(c pair) {
	s.mu.Lock()
	c.Call(1, 2)
	s.mu.Unlock()
}
