// Package lockheld guards against the deadlock-and-latency class that
// replication and batching (ROADMAP items 2–3) would otherwise walk
// into: performing a transport round trip — or any network / file I/O —
// while holding a sync.Mutex or sync.RWMutex. A handler blocked on I/O
// under a lock stalls every other goroutine needing that lock; if the
// I/O completion itself needs the lock (a response handler updating the
// same state), the process deadlocks.
//
// The analysis is a conservative syntactic walk over each function body:
// x.Lock()/x.RLock() marks x held until the matching x.Unlock()/x.RUnlock()
// in straight-line code (a deferred Unlock holds to function end). While
// any lock is held, calls matching the I/O shapes below are flagged:
//
//   - Transport round trips: a 3-argument .Call(...) or any .Broadcast(...)
//   - Dialing and listening: .DialContext(...), net.Dial*/net.Listen*
//   - HTTP round trips: http.Get/Post/Head and client .Do(...)
//   - File-system mutation/reads: os.Open/Create/ReadFile/WriteFile/...
//
// Branch and loop bodies are analyzed with a copy of the held set and
// releases inside them do not leak out, so an early-unlock-and-return
// branch never produces a false positive; function literals are analyzed
// as fresh functions (a spawned goroutine does not inherit the caller's
// lock scope). The trade-off is deliberate: miss some violations rather
// than cry wolf.
package lockheld

import (
	"go/ast"
	"go/token"

	"paxq/tools/paxlint/analysis"
)

// Analyzer is the no-I/O-under-lock invariant.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "forbid transport calls and network/file I/O while holding a sync.Mutex/RWMutex",
	Run:  run,
}

// osIO is the flagged set of file-system package functions.
var osIO = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
	"WriteFile": true, "Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "ReadDir": true,
}

// netIO is the flagged set of net/http package functions.
var netIO = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialUDP": true, "DialTCP": true,
	"Listen": true, "ListenPacket": true, "ListenTCP": true,
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c := &checker{pass: pass}
				c.walkStmts(fd.Body.List, map[string]token.Pos{})
			}
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// walkStmts processes a statement list, threading the held-lock set
// (mutex expression → Lock position) through straight-line code.
func (c *checker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		c.walkStmt(stmt, held)
	}
}

func (c *checker) walkStmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, locked, ok := lockOp(s.X); ok {
			if locked {
				held[key] = s.X.Pos()
			} else {
				delete(held, key)
			}
			return
		}
		c.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: the lock is held for the
		// rest of this function body, which is exactly the state `held`
		// already records — nothing to do. Deferred function literals run
		// after the enclosing frame released its locks, so they are
		// analyzed as fresh functions.
		if _, _, ok := lockOp(s.Call); ok {
			return
		}
		c.scanExpr(s.Call, map[string]token.Pos{})
	case *ast.GoStmt:
		// The spawned goroutine does not inherit this frame's lock scope.
		c.scanExpr(s.Call, map[string]token.Pos{})
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		c.scanExpr(nil, held) // no-op; declarations with values handled below
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.scanExpr(s.Cond, held)
		c.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held)
		}
		c.walkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		c.scanExpr(s.X, held)
		c.walkStmts(s.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		c.walkStmts(s.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, held)
		}
		c.walkStmts(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		c.walkStmts(s.Body.List, held)
	case *ast.SelectStmt:
		c.walkStmts(s.Body.List, held)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.scanExpr(e, held)
		}
		c.walkStmts(s.Body, copyHeld(held))
	case *ast.CommClause:
		c.walkStmts(s.Body, copyHeld(held))
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	case *ast.SendStmt:
		c.scanExpr(s.Chan, held)
		c.scanExpr(s.Value, held)
	}
}

// scanExpr reports banned calls inside e while locks are held, and
// analyzes function literals as fresh functions.
func (c *checker) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(x.Body.List, map[string]token.Pos{})
			return false
		case *ast.CallExpr:
			if len(held) > 0 {
				if what, ok := bannedCall(x); ok {
					key, pos := anyHeld(held)
					c.pass.Reportf(x.Pos(), "%s while holding %s (locked at %s): transport and I/O must happen outside critical sections", what, key, c.pass.Fset.Position(pos))
				}
			}
		}
		return true
	})
}

// lockOp matches x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() and returns
// the mutex expression key and whether it acquires.
func lockOp(e ast.Expr) (key string, locked, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprKey(sel.X), true, true
	case "Unlock", "RUnlock":
		return exprKey(sel.X), false, true
	}
	return "", false, false
}

// bannedCall classifies call as a transport round trip or network/file
// I/O, returning a human-readable description.
func bannedCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch {
	case name == "Call" && len(call.Args) == 3:
		return "transport Call", true
	case name == "Broadcast":
		return "transport Broadcast", true
	case name == "DialContext":
		return "network dial", true
	case name == "Do" && len(call.Args) == 1:
		// http.Client.Do — the only 1-arg Do in this codebase's imports.
		return "HTTP round trip", true
	}
	if pkg, ok := sel.X.(*ast.Ident); ok {
		switch pkg.Name {
		case "net", "http", "tls":
			if netIO[name] {
				return pkg.Name + "." + name, true
			}
		case "os":
			if osIO[name] {
				return "os." + name, true
			}
		}
	}
	return "", false
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// anyHeld returns a deterministic representative of the held set (the
// lexically smallest key).
func anyHeld(held map[string]token.Pos) (string, token.Pos) {
	var bestK string
	var bestP token.Pos
	for k, p := range held {
		if bestK == "" || k < bestK {
			bestK, bestP = k, p
		}
	}
	return bestK, bestP
}

func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	case *ast.IndexExpr:
		return exprKey(x.X) + "[…]"
	default:
		return "?"
	}
}
