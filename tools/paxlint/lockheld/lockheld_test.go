package lockheld_test

import (
	"testing"

	"paxq/tools/paxlint/analysistest"
	"paxq/tools/paxlint/lockheld"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, "testdata", lockheld.Analyzer,
		"paxq/internal/lib",
	)
}
