package paxq_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"paxq"
)

// TestClusterAdmissionControl exercises the public admission-control
// surface: a cluster with MaxInFlight 1 sheds concurrent queries with
// ErrOverloaded, and recovers once load drops.
func TestClusterAdmissionControl(t *testing.T) {
	doc := paxq.GenerateXMark(2, 0.05, 1)
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		Fragments:   4,
		Sites:       2,
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const workers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, shed := 0, 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cluster.Query("//person/name", paxq.QueryOptions{Algorithm: "pax3"})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, paxq.ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if served == 0 {
		t.Error("no query was served")
	}
	if served+shed != workers {
		t.Errorf("served %d + shed %d != %d workers", served, shed, workers)
	}
	// Load gone: admission must recover.
	if _, _, err := cluster.Query("//person/name", paxq.QueryOptions{}); err != nil {
		t.Errorf("query after overload: %v", err)
	}
}

// TestClusterQueryContextTimeout: an expired context fails the query with
// the context's error through the public API.
func TestClusterQueryContextTimeout(t *testing.T) {
	doc := paxq.GenerateXMark(1, 0.02, 1)
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{Fragments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := cluster.QueryContext(ctx, "//person/name", paxq.QueryOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTransportStatsAccumulate: lifetime counters grow with traffic and
// count every site visit.
func TestTransportStatsAccumulate(t *testing.T) {
	doc := paxq.GenerateXMark(2, 0.02, 1)
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{Fragments: 4, Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	before := cluster.TransportStats()
	if _, _, err := cluster.Query("//person/name", paxq.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	after := cluster.TransportStats()
	if after.BytesSent <= before.BytesSent || after.BytesReceived <= before.BytesReceived {
		t.Errorf("bytes did not grow: %+v -> %+v", before, after)
	}
	if after.TotalVisits <= before.TotalVisits || after.TotalCompute <= 0 {
		t.Errorf("visits/compute did not grow: %+v", after)
	}
	if len(after.SiteVisits) == 0 {
		t.Error("no per-site visit counts")
	}
}

// TestClusterQueueTimeoutMode: with queueing configured, a held slot makes
// a second query wait; it must eventually fail with ErrOverloaded rather
// than hang, within roughly the configured deadline.
func TestClusterQueueTimeoutMode(t *testing.T) {
	doc := paxq.GenerateXMark(2, 0.1, 1)
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		Fragments:    4,
		MaxInFlight:  1,
		QueueTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Saturate the single slot from many goroutines; with a 20ms queue
	// every loser either gets served within the deadline or sheds typed.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cluster.Query("//open_auctions//annotation", paxq.QueryOptions{})
			if err != nil && !errors.Is(err, paxq.ErrOverloaded) {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
}
