// Package paxq is a distributed XPath query engine with performance
// guarantees, reproducing "Distributed Query Evaluation with Performance
// Guarantees" (Cong, Fan, Kementsietsidis — SIGMOD 2007).
//
// An XML document is fragmented into subtrees distributed over sites; paxq
// evaluates data-selecting XPath queries (downward axes + qualifiers) over
// the fragmented tree using partial evaluation: every site evaluates the
// whole query over its fragments, producing residual Boolean formulas over
// variables that stand for the data other sites hold; the coordinator
// unifies them. The guarantees, independent of how the tree is fragmented
// and distributed:
//
//   - each site is visited at most 3 times (PaX3), at most 2 (PaX2), and
//     as little as once with the annotation optimization;
//   - network traffic is O(|Q|·|fragments| + |answer|) — never O(|tree|);
//   - total computation is comparable to the best centralized algorithm.
//
// Quick start:
//
//	doc, _ := paxq.ParseDocument(strings.NewReader(xmlText))
//	cluster, _ := paxq.NewCluster(doc, paxq.ClusterOptions{Fragments: 4, Sites: 2})
//	defer cluster.Close()
//	answers, _ := cluster.Evaluate(`//broker[//stock/code = "GOOG"]/name`)
//
// # Concurrency and serving
//
// A Cluster is a long-lived serving object: once built, any number of
// goroutines may call Evaluate, Query and EvaluateBool concurrently —
// cmd/paxserve exposes exactly this over HTTP. Each evaluation carries a
// private cost ledger fed by per-call transport costs, so the Stats of
// one query are attributed to that query alone and the paper's per-query
// guarantees (visit bound, traffic bound) can be asserted even under
// concurrent load. Within one site, the fragments of a stage request are
// themselves evaluated in parallel (ClusterOptions.SiteParallelism), with
// per-fragment computation summed into the ledger so the cost profile is
// identical to sequential evaluation. Compiled query plans are cached and
// shared between evaluations. Close must not be called while evaluations
// are in flight; in-flight queries then fail with transport errors.
//
// # Overload and deadlines
//
// ClusterOptions.MaxInFlight enables admission control: beyond the bound,
// evaluations fail fast with ErrOverloaded, or first queue for up to
// ClusterOptions.QueueTimeout. QueryContext bounds a single evaluation
// with a context whose deadline travels down to the site transport.
// TransportStats exposes the transport's lifetime cost counters for
// monitoring (paxserve serves them at /metrics).
package paxq

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"paxq/internal/centeval"
	"paxq/internal/dist"
	"paxq/internal/fragment"
	"paxq/internal/pax"
	"paxq/internal/sitecache"
	"paxq/internal/xmark"
	"paxq/internal/xmltree"
	"paxq/internal/xpath"
)

// ErrOverloaded is returned by Query/Evaluate when the cluster's admission
// limit (ClusterOptions.MaxInFlight) is reached and the evaluation was
// shed, or timed out queueing for a slot (ClusterOptions.QueueTimeout).
// The query never started; retrying later is safe. Match with errors.Is.
var ErrOverloaded = pax.ErrOverloaded

// Document is a parsed XML document.
type Document struct {
	tree *xmltree.Tree
}

// ParseDocument reads an XML document.
func ParseDocument(r io.Reader) (*Document, error) {
	t, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Document{tree: t}, nil
}

// ParseDocumentString is ParseDocument over a string.
func ParseDocumentString(s string) (*Document, error) {
	return ParseDocument(strings.NewReader(s))
}

// Nodes returns the number of nodes in the document.
func (d *Document) Nodes() int { return d.tree.Size() }

// Bytes returns the estimated serialized size.
func (d *Document) Bytes() int { return d.tree.ComputeStats().Bytes }

// XML serializes the document.
func (d *Document) XML() string { return xmltree.SerializeString(d.tree.Root) }

// GenerateXMark generates a synthetic XMark-like document (the workload of
// the paper's experiments): a "sites" root with the given number of XMark
// site subtrees, totalling approximately mb megabytes. Deterministic in
// seed.
func GenerateXMark(sites int, mb float64, seed int64) *Document {
	if sites < 1 {
		sites = 1
	}
	if mb <= 0 {
		mb = 0.1
	}
	cal := xmark.Calibrate()
	spec := cal.SpecForBytes(int(mb * 1e6 / float64(sites)))
	return &Document{tree: xmark.Generate(sites, spec, seed)}
}

// Answer is one element of a query answer.
type Answer struct {
	// Fragment and Node identify the element within the fragmented tree.
	Fragment int
	Node     int
	// Label and Value are the element's tag and string value.
	Label string
	Value string
	// XML is the serialized subtree when requested via ShipXML.
	XML string
}

// Stats reports the cost profile of one distributed evaluation — the
// quantities the paper's guarantees bound.
type Stats struct {
	Algorithm     string
	Stages        int
	MaxSiteVisits int
	BytesSent     int64
	BytesReceived int64
	Wall          time.Duration
	TotalCompute  time.Duration
	// ParallelCompute is the paper's parallel computation cost: per stage,
	// the maximum computation time across sites — the evaluation time
	// perceived on a cluster with one machine per site.
	ParallelCompute time.Duration
	RelevantFrags   int
	TotalFrags      int
	// Retries counts stage calls of this query the failover layer attempted
	// again after a retriable failure; Failovers counts how many of those
	// rotated to a different replica. Both 0 on a fault-free run, where
	// MaxSiteVisits obeys the paper's exact bound; under faults
	// MaxSiteVisits <= bound * (1 + Retries).
	Retries   int
	Failovers int
}

// TransportKind selects how coordinator and sites communicate.
type TransportKind int

// Transports: in-process (default) or real TCP servers on loopback.
const (
	TransportLocal TransportKind = iota
	TransportTCP
)

// CodecKind selects the wire encoding between coordinator and sites.
type CodecKind int

// Codecs: the hand-written binary message format (default), or the legacy
// reflection-driven gob envelopes kept as a differential cross-check.
const (
	CodecBinary CodecKind = iota
	CodecGob
)

// ParseCodec maps a flag value ("binary" or "gob", case-insensitive) to
// a CodecKind, delegating to the transport layer's parser so every
// command accepts exactly the same spellings.
func ParseCodec(s string) (CodecKind, error) {
	c, err := dist.ParseCodec(s)
	if err != nil {
		return CodecBinary, fmt.Errorf("paxq: unknown codec %q (want binary or gob)", s)
	}
	if c == dist.Gob {
		return CodecGob, nil
	}
	return CodecBinary, nil
}

// ClusterOptions configures fragmentation and deployment.
type ClusterOptions struct {
	// Fragments requests a random fragmentation with this many fragments
	// (at least 1). Ignored when CutPaths or MaxFragmentNodes is set.
	Fragments int
	// CutPaths fragments the document at the elements selected by these
	// XPath queries — precise, declarative fragmentation.
	CutPaths []string
	// MaxFragmentNodes fragments by size: no fragment much exceeds this
	// node count.
	MaxFragmentNodes int
	// Sites is the number of sites fragments are spread over
	// (round-robin). Defaults to one site per fragment.
	Sites int
	// Transport selects in-process or TCP deployment.
	Transport TransportKind
	// Seed drives random fragmentation.
	Seed int64

	// MaxInFlight bounds the number of concurrently admitted evaluations
	// (admission control). Beyond it, Query fails fast with ErrOverloaded —
	// or queues, see QueueTimeout. 0 means unlimited.
	MaxInFlight int
	// QueueTimeout switches admission from immediate shedding to
	// queue-with-deadline: an evaluation arriving at a full cluster waits
	// up to this long for a slot before failing with ErrOverloaded.
	// Meaningful only with MaxInFlight > 0.
	QueueTimeout time.Duration
	// SiteParallelism bounds per-site fragment-evaluation concurrency
	// within one stage request (1 = sequential). 0 means GOMAXPROCS.
	// Applies to in-process (TransportLocal) and loopback-TCP sites built
	// by NewCluster.
	SiteParallelism int
	// Codec selects the wire encoding between coordinator and sites
	// (default CodecBinary; CodecGob for differential cross-checks).
	Codec CodecKind
	// DisableSimplify turns off the formula simplification pass sites run
	// before shipping residual formulas. Answers are identical either
	// way; disabling it trades bytes on the wire for a little site CPU,
	// and exists mainly so tests can cross-check the pass.
	DisableSimplify bool
	// SiteCacheSize equips every site with a Stage-1 (qualifier pass)
	// memoization cache of at most this many entries: a repeated query
	// answers its qualifier stage from cache with zero tree traversal,
	// shipping byte-identical residual formulas. 0 (the default) disables
	// caching. Invalidate with BumpSiteCacheGeneration after mutating
	// fragments; counters surface in TransportStats.SiteCache.
	SiteCacheSize int
	// SiteCacheTTL bounds the lifetime of memoized Stage-1 results; 0
	// means entries live until evicted or invalidated. Meaningful only
	// with SiteCacheSize > 0.
	SiteCacheTTL time.Duration
	// SiteVectorEval switches every site's Stage-1 qualifier pass to the
	// bit-packed columnar evaluator over per-fragment arenas. Answers,
	// visit counts and wire bytes are byte-identical to the default
	// per-node evaluator; only site-side compute time differs.
	SiteVectorEval bool
	// BatchWindow enables coordinator-side multi-query stage batching:
	// stage requests from concurrent evaluations bound for the same site
	// are held up to this long and coalesced into one batch envelope — one
	// site visit serving every member, with identical qualifier stages
	// evaluated once and the shared cost split deterministically across
	// members (per-query Stats still sum exactly to TransportStats). 0
	// (the default) disables batching; answers are identical either way,
	// and a batch of one is sent byte-identically to the unbatched path.
	BatchWindow time.Duration
	// MaxBatchSize caps how many evaluations one batch envelope may carry
	// (a full batch flushes before the window expires). 0 means a default
	// of 16. Meaningful only with BatchWindow > 0.
	MaxBatchSize int

	// Replicas deploys every site as a replica group of this many members
	// hosting identical fragment copies: the coordinator addresses the
	// group's primary and fails over to the next replica when a site dies
	// mid-query (re-establishing the query's session there), so answers
	// survive site failures unchanged. 0 or 1 means no replication.
	// Replication and BatchWindow are mutually exclusive per cluster: the
	// failover fan-out bypasses the batcher.
	Replicas int
	// Registry, when non-empty, is the path of a site-registry JSON file
	// (see pax.Registry) describing which replica sites host each fragment.
	// It overrides Sites and Replicas: the topology — replica groups
	// included — is exactly what the file says. The fragmentation options
	// (Fragments/CutPaths/MaxFragmentNodes/Seed) must produce the fragment
	// count the registry covers. NewCluster still instantiates every site
	// itself (in-process or loopback TCP); the registry's address list is
	// a deployment artifact for cmd/paxsite fleets and is not dialed here.
	Registry string
	// RetryMaxAttempts bounds how many attempts one stage call gets across
	// a replica group before the query fails (first try included). 0 picks
	// the default: 4 when replicated, 1 (no retrying) otherwise.
	RetryMaxAttempts int
	// RetryBackoff is the wait before the second attempt of a failed stage
	// call; each further attempt doubles it. 0 with RetryMaxAttempts == 0
	// keeps the default policy's 2ms.
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the exponential backoff schedule. 0 with
	// RetryMaxAttempts == 0 keeps the default policy's 50ms.
	RetryMaxBackoff time.Duration
}

// Cluster is a fragmented, distributed document plus a coordinator. It is
// safe for concurrent use: many queries may be evaluated at once, each
// receiving its own independent Stats (see the package comment).
type Cluster struct {
	ft       *fragment.Fragmentation
	topo     *pax.Topology
	engine   *pax.Engine
	tr       dist.Transport
	sites    []*pax.Site
	shutdown func()
}

// NewCluster fragments doc and deploys the fragments over sites.
func NewCluster(doc *Document, opts ClusterOptions) (*Cluster, error) {
	var cuts []xmltree.NodeID
	switch {
	case len(opts.CutPaths) > 0:
		seen := make(map[xmltree.NodeID]bool)
		for _, path := range opts.CutPaths {
			q, err := xpath.Parse(path)
			if err != nil {
				return nil, fmt.Errorf("paxq: cut path %q: %w", path, err)
			}
			for _, n := range centeval.EvalNaive(doc.tree, q) {
				if n.Parent == nil {
					continue // cannot cut at the root
				}
				if !seen[n.ID] {
					seen[n.ID] = true
					cuts = append(cuts, n.ID)
				}
			}
		}
	case opts.MaxFragmentNodes > 0:
		cuts = fragment.CutsBySize(doc.tree, opts.MaxFragmentNodes)
	case opts.Fragments > 1:
		cuts = fragment.RandomCuts(doc.tree, opts.Fragments-1, opts.Seed)
	}
	ft, err := fragment.Cut(doc.tree, cuts)
	if err != nil {
		return nil, fmt.Errorf("paxq: %w", err)
	}
	sites := opts.Sites
	if sites <= 0 {
		sites = ft.Len()
	}
	var topo *pax.Topology
	switch {
	case opts.Registry != "":
		reg, rerr := pax.LoadRegistry(opts.Registry)
		if rerr != nil {
			return nil, fmt.Errorf("paxq: %w", rerr)
		}
		topo, err = reg.Topology(ft)
		if err != nil {
			return nil, fmt.Errorf("paxq: %w", err)
		}
	case opts.Replicas > 1:
		topo = pax.RoundRobinReplicated(ft, sites, opts.Replicas)
	default:
		topo = pax.RoundRobin(ft, sites)
	}
	c := &Cluster{ft: ft, topo: topo}
	var siteOpts []pax.SiteOption
	if opts.SiteParallelism > 0 {
		siteOpts = append(siteOpts, pax.SiteParallelism(opts.SiteParallelism))
	}
	if opts.Codec == CodecGob {
		siteOpts = append(siteOpts, pax.ClusterCodec(dist.Gob))
	}
	if opts.DisableSimplify {
		siteOpts = append(siteOpts, pax.SiteSimplify(false))
	}
	if opts.SiteCacheSize > 0 {
		siteOpts = append(siteOpts, pax.WithSiteCache(opts.SiteCacheSize), pax.WithSiteCacheTTL(opts.SiteCacheTTL))
	}
	if opts.SiteVectorEval {
		siteOpts = append(siteOpts, pax.WithSiteVectorEval(true))
	}
	engOpts := []pax.EngineOption{
		pax.WithMaxInFlight(opts.MaxInFlight),
		pax.WithQueueTimeout(opts.QueueTimeout),
	}
	if opts.BatchWindow > 0 {
		engOpts = append(engOpts, pax.WithBatchWindow(opts.BatchWindow), pax.WithMaxBatchSize(opts.MaxBatchSize))
	}
	if opts.RetryMaxAttempts > 0 {
		engOpts = append(engOpts, pax.WithRetryPolicy(pax.RetryPolicy{
			MaxAttempts: opts.RetryMaxAttempts,
			Backoff:     opts.RetryBackoff,
			MaxBackoff:  opts.RetryMaxBackoff,
		}))
	}
	switch opts.Transport {
	case TransportLocal:
		local, sites := pax.BuildLocalCluster(topo, siteOpts...)
		c.engine = pax.NewEngine(topo, local, engOpts...)
		c.tr = local
		c.sites = sites
		c.shutdown = func() {}
	case TransportTCP:
		tcp, sites, stop, err := pax.BuildTCPCluster(topo, siteOpts...)
		if err != nil {
			return nil, fmt.Errorf("paxq: %w", err)
		}
		c.engine = pax.NewEngine(topo, tcp, engOpts...)
		c.tr = tcp
		c.sites = sites
		c.shutdown = stop
	default:
		return nil, fmt.Errorf("paxq: unknown transport %d", opts.Transport)
	}
	return c, nil
}

// Close releases cluster resources (TCP servers, connections).
func (c *Cluster) Close() {
	if c.shutdown != nil {
		c.shutdown()
	}
}

// Fragments returns the number of fragments.
func (c *Cluster) Fragments() int { return c.ft.Len() }

// Sites returns the number of sites.
func (c *Cluster) Sites() int { return len(c.topo.Sites()) }

// QueryOptions tune one evaluation.
type QueryOptions struct {
	// Algorithm: "pax2" (default), "pax3" or "naive".
	Algorithm string
	// Annotations enables the §5 fragment-pruning optimization
	// (default on for Evaluate).
	Annotations bool
	// ShipXML returns serialized answer subtrees.
	ShipXML bool
}

func (o QueryOptions) toPax() (pax.Options, error) {
	out := pax.Options{Annotations: o.Annotations, ShipXML: o.ShipXML}
	switch strings.ToLower(o.Algorithm) {
	case "", "pax2":
		out.Algorithm = pax.PaX2
	case "pax3":
		out.Algorithm = pax.PaX3
	case "naive":
		out.Algorithm = pax.Naive
	default:
		return out, fmt.Errorf("paxq: unknown algorithm %q (want pax2, pax3 or naive)", o.Algorithm)
	}
	return out, nil
}

// Query evaluates an XPath query with explicit options and returns the
// answers plus the evaluation's cost profile. Safe for concurrent use;
// the returned Stats cover this evaluation alone.
func (c *Cluster) Query(query string, opts QueryOptions) ([]Answer, *Stats, error) {
	//paxlint:allow ctxflow(public blocking wrapper: Query's documented contract is an unbounded evaluation; QueryContext is the flowed form)
	return c.QueryContext(context.Background(), query, opts)
}

// QueryContext is Query bounded by a context: the deadline (or
// cancellation) covers admission queueing and every site round trip, and
// is propagated through the transport so a slow or unreachable site fails
// the query instead of wedging the caller. Under admission control
// (ClusterOptions.MaxInFlight), a full cluster sheds or queues; both
// surface as ErrOverloaded.
func (c *Cluster) QueryContext(ctx context.Context, query string, opts QueryOptions) ([]Answer, *Stats, error) {
	po, err := opts.toPax()
	if err != nil {
		return nil, nil, err
	}
	res, err := c.engine.RunContext(ctx, query, po)
	if err != nil {
		return nil, nil, err
	}
	answers := make([]Answer, len(res.Answers))
	for i, a := range res.Answers {
		answers[i] = Answer{
			Fragment: int(a.Frag),
			Node:     int(a.Node),
			Label:    a.Label,
			Value:    a.Value,
			XML:      a.XML,
		}
	}
	stats := &Stats{
		Algorithm:       po.Algorithm.String(),
		Stages:          res.Stages,
		MaxSiteVisits:   res.MaxVisits,
		BytesSent:       res.BytesSent,
		BytesReceived:   res.BytesRecv,
		Wall:            res.Wall,
		TotalCompute:    res.TotalCompute,
		ParallelCompute: res.ParallelCompute,
		RelevantFrags:   res.RelevantFrags,
		TotalFrags:      res.TotalFrags,
		Retries:         res.Retries,
		Failovers:       res.Failovers,
	}
	return answers, stats, nil
}

// Evaluate runs the query with the best default configuration: PaX2 with
// XPath annotations.
func (c *Cluster) Evaluate(query string) ([]Answer, error) {
	ans, _, err := c.Query(query, QueryOptions{Algorithm: "pax2", Annotations: true})
	return ans, err
}

// EvaluateBool evaluates a Boolean query (a bare qualifier such as
// "[//stock/code = 'GOOG']") using the distributed ParBoX protocol — the
// single-pass Boolean algorithm the paper's Stage 1 extends. Every site is
// visited at most once.
func (c *Cluster) EvaluateBool(query string) (bool, error) {
	//paxlint:allow ctxflow(public blocking wrapper: EvaluateBoolContext is the flowed form)
	return c.EvaluateBoolContext(context.Background(), query)
}

// EvaluateBoolContext is EvaluateBool bounded by a context, with the same
// deadline and admission-control semantics as QueryContext.
func (c *Cluster) EvaluateBoolContext(ctx context.Context, query string) (bool, error) {
	ok, _, err := c.engine.RunBooleanContext(ctx, query, pax.Options{})
	return ok, err
}

// SiteCacheStats aggregates the Stage-1 memoization cache counters of
// every site in the cluster (all zero when ClusterOptions.SiteCacheSize is
// 0). SavedCompute is the site computation the cache avoided — reported
// here, never in any query's Stats, so per-query cost conservation holds.
type SiteCacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Expirations   int64
	Invalidations int64
	// ScopedInvalidations and ScopedRetained split the fates of entries
	// offered to delta-scoped invalidation after a fragment edit
	// (Cluster.ApplyEdit): dropped because the edit's label footprint or
	// subtree interval could affect them, versus carried into the new
	// fragment version (remapped, or incrementally patched under the
	// vector Stage-1 evaluator). A retained entry is a Stage-1 sweep the
	// next query on that fragment does not pay for.
	ScopedInvalidations int64
	ScopedRetained      int64
	SavedCompute        time.Duration
	Entries             int
	Generation          uint64
}

// FailoverStats are the coordinator's lifetime failover counters (all zero
// without replication or retries): how often stage calls were retried,
// rotated to a replica, how many transport-level dead-site detections were
// observed, and how many query sessions were re-established by replaying
// prior stages. Surfaced in TransportStats and paxserve's /metrics.
type FailoverStats struct {
	Retries               int64
	Failovers             int64
	DeadSiteDetections    int64
	ReestablishedSessions int64
}

// TransportStats are the cluster transport's cumulative lifetime counters:
// the sum of the cost of every site call ever made, across all queries —
// plus the aggregated site-cache counters and the coordinator's failover
// counters. Per-query accounting lives in Stats; these totals feed
// monitoring (e.g. paxserve's /metrics endpoint).
type TransportStats struct {
	BytesSent     int64
	BytesReceived int64
	TotalCompute  time.Duration
	TotalVisits   int
	SiteVisits    map[int]int
	SiteCache     SiteCacheStats
	Failover      FailoverStats
}

// TransportStats returns a snapshot of the transport's lifetime counters.
// Safe for concurrent use with in-flight queries.
func (c *Cluster) TransportStats() TransportStats {
	//paxlint:allow ledger(read-only snapshot of the lifetime totals for monitoring; never resets, never feeds per-query Stats)
	snap := c.tr.Metrics().Snapshot()
	out := TransportStats{
		BytesSent:     snap.Sent,
		BytesReceived: snap.Recv,
		TotalVisits:   snap.TotalVisits(),
		SiteVisits:    make(map[int]int, len(snap.Visits)),
	}
	for site, n := range snap.Visits {
		out.SiteVisits[int(site)] = n
	}
	for _, d := range snap.Compute {
		out.TotalCompute += d
	}
	var agg sitecache.Stats
	for _, s := range c.sites {
		agg.Merge(s.CacheStats())
	}
	out.SiteCache = SiteCacheStats{
		Hits:                agg.Hits,
		Misses:              agg.Misses,
		Evictions:           agg.Evictions,
		Expirations:         agg.Expirations,
		Invalidations:       agg.Invalidations,
		ScopedInvalidations: agg.ScopedInvalidations,
		ScopedRetained:      agg.ScopedRetained,
		SavedCompute:        agg.SavedCompute,
		Entries:             agg.Entries,
		Generation:          agg.Generation,
	}
	fs := c.engine.FailoverStats()
	out.Failover = FailoverStats{
		Retries:               fs.Retries,
		Failovers:             fs.Failovers,
		DeadSiteDetections:    fs.DeadSites,
		ReestablishedSessions: fs.Reestablished,
	}
	return out
}

// Replicas returns the cluster's replication factor: the size of the
// largest replica group (1 when unreplicated).
func (c *Cluster) Replicas() int {
	max := 1
	for _, p := range c.topo.Primaries() {
		if n := len(c.topo.ReplicasOf(p)); n > max {
			max = n
		}
	}
	return max
}

// SaveRegistry writes the cluster's fragment-to-replica-site assignment as
// a registry file (see ClusterOptions.Registry) — a deployment artifact
// for reconstructing the same topology, e.g. across a cmd/paxsite fleet.
// Addresses are included only for TCP clusters.
func (c *Cluster) SaveRegistry(path string) error {
	addrs := map[dist.SiteID]string{}
	if tcp, ok := c.tr.(*dist.TCP); ok {
		addrs = tcp.Addrs()
	}
	return pax.NewRegistry(c.topo, addrs).Save(path)
}

// DrillSiteOutage schedules a deterministic site outage on an in-process
// cluster — the transport-level fault injection behind the harness,
// exposed so a deployment can rehearse failover and watch its monitoring
// move: the site's after-th upcoming call fails, the site stays
// unreachable for the next down calls, and it then restarts with all
// in-memory state (query sessions, Stage-1 cache, compiled queries)
// wiped, exactly like a crashed and supervised process. On a replicated
// cluster, or one with a retry policy, queries ride out the outage —
// answers unchanged, the failover counters of TransportStats (and
// paxserve's /metrics and /statsz) advancing — while an unprotected
// cluster sees the affected query fail. Scheduling a drill replaces any
// previous one; schedule only while no queries are in flight. TCP
// clusters drill for real — kill the site's process — so an error is
// returned for them and for unknown sites.
func (c *Cluster) DrillSiteOutage(site, after, down int) error {
	local, ok := c.tr.(*dist.Local)
	if !ok {
		return fmt.Errorf("paxq: outage drills are in-process only; on a TCP fleet, kill the site's process")
	}
	var target *pax.Site
	for _, s := range c.sites {
		if int(s.ID()) == site {
			target = s
		}
	}
	if target == nil {
		return fmt.Errorf("paxq: no site %d in this cluster", site)
	}
	if after < 1 {
		after = 1
	}
	if down < 0 {
		down = 0
	}
	plan := dist.NewFaultPlan(dist.SiteFault{Site: dist.SiteID(site), Call: after, Action: dist.FaultKill, Down: down})
	plan.OnRestart = func(dist.SiteID) { target.Restart() }
	local.FaultHook = plan.Hook
	return nil
}

// BumpSiteCacheGeneration advances the fragment generation of every site's
// Stage-1 cache, invalidating all memoized results — call after mutating
// the underlying fragments so stale partial answers are never replayed.
// A no-op when caching is disabled.
func (c *Cluster) BumpSiteCacheGeneration() {
	for _, s := range c.sites {
		s.BumpCacheGeneration()
	}
}

// EditOp selects the kind of fragment edit Cluster.ApplyEdit performs.
type EditOp int

// Fragment edit operations.
const (
	// EditInsert attaches the subtree parsed from Edit.SubtreeXML as child
	// number Edit.Pos of element Edit.Node.
	EditInsert EditOp = iota
	// EditDelete removes the subtree rooted at Edit.Node.
	EditDelete
	// EditRename relabels element Edit.Node to Edit.Label.
	EditRename
)

// Edit describes one mutation of a fragment's subtree, addressed by the
// fragment-local node IDs that Answer.Node and Answer.Fragment report.
// The fragmentation skeleton is fixed: fragment roots and the virtual
// cut points connecting fragments can be neither deleted nor renamed,
// and inserted subtrees must be element-rooted. Invalid edits fail
// without changing anything.
type Edit struct {
	// Fragment is the fragment to edit, 0..Cluster.Fragments()-1.
	Fragment int
	// Op is the operation to perform.
	Op EditOp
	// Node is the fragment-local target: the delete/rename subject, or
	// the insert parent.
	Node int
	// Pos is the insert slot among Node's children (text children
	// counted), 0..len(children); ignored for delete and rename.
	Pos int
	// Label is the rename's new label; ignored otherwise.
	Label string
	// SubtreeXML is the insert's payload, a single-rooted XML snippet
	// such as "<broker><name>Ada</name></broker>"; ignored otherwise.
	SubtreeXML string
}

// toFragment renders the public edit as the internal one, parsing the
// insert payload.
func (e Edit) toFragment() (fragment.Edit, error) {
	ed := fragment.Edit{Node: xmltree.NodeID(e.Node), Pos: e.Pos, Label: e.Label}
	switch e.Op {
	case EditInsert:
		ed.Op = fragment.EditInsert
		t, err := xmltree.ParseString(e.SubtreeXML)
		if err != nil {
			return ed, fmt.Errorf("paxq: edit subtree: %w", err)
		}
		ed.Subtree = t.Root
	case EditDelete:
		ed.Op = fragment.EditDelete
	case EditRename:
		ed.Op = fragment.EditRename
	default:
		return ed, fmt.Errorf("paxq: unknown edit op %d", int(e.Op))
	}
	return ed, nil
}

// EditResult reports one applied edit: where the fragment's version moved,
// what the sites' delta-scoped cache invalidation did with the entries it
// held, and the edit's own transport ledger. Like a query's Stats, the
// ledger is private to this edit; summed with every query's Stats it
// accounts for the transport's lifetime totals exactly.
type EditResult struct {
	// Fragment echoes the edited fragment; NewVersion is its version on
	// every replica after the edit.
	Fragment   int
	NewVersion uint64
	// Sites is the replica-group size the edit was delivered to; Replayed
	// counts members that acknowledged idempotently instead of re-applying
	// (they already held this edit from an earlier, partially failed
	// delivery).
	Sites    int
	Replayed int
	// Dropped, Retained and Patched sum the fates of the sites' cached
	// Stage-1 entries for this fragment: invalidated because the edit
	// could affect them, retained because the edit's label footprint and
	// subtree interval provably cannot, or repaired in place by patching
	// cached vector state. Also aggregated cluster-wide in
	// TransportStats.SiteCache.
	Dropped  int
	Retained int
	Patched  int
	// Retries counts per-replica deliveries attempted again after a
	// transport failure.
	Retries       int
	BytesSent     int64
	BytesReceived int64
	TotalCompute  time.Duration
}

// ApplyEdit applies one edit to the fragment's subtree on every replica
// hosting it, invalidating only the cached Stage-1 state the edit can
// actually affect (see SiteCacheStats.ScopedRetained for what survived).
// Edits on a cluster serialize with each other; queries keep running
// concurrently, and each in-flight query sees one consistent fragment
// version end to end — either fully before or fully after the edit, never
// a mix.
//
// On error no fragment version has advanced, and re-issuing the same edit
// is the safe and exact recovery: replicas that did apply it acknowledge
// idempotently (counted in EditResult.Replayed), the rest apply it.
//
// Note that coordinator planning is intentionally not re-derived: it
// depends only on facts the edit restrictions pin (fragment count, the
// cut-point skeleton, spine annotations), so plans compiled before an
// edit remain exact after it.
func (c *Cluster) ApplyEdit(e Edit) (*EditResult, error) {
	//paxlint:allow ctxflow(public blocking wrapper: ApplyEditContext is the flowed form)
	return c.ApplyEditContext(context.Background(), e)
}

// ApplyEditContext is ApplyEdit bounded by a context covering every
// replica delivery, including retry backoff while a replica is down.
func (c *Cluster) ApplyEditContext(ctx context.Context, e Edit) (*EditResult, error) {
	if e.Fragment < 0 || e.Fragment >= c.ft.Len() {
		return nil, fmt.Errorf("paxq: no fragment %d in this cluster (have %d)", e.Fragment, c.ft.Len())
	}
	ed, err := e.toFragment()
	if err != nil {
		return nil, err
	}
	res, err := c.engine.ApplyEdit(ctx, fragment.FragID(e.Fragment), ed)
	if err != nil {
		return nil, err
	}
	return &EditResult{
		Fragment:      int(res.Frag),
		NewVersion:    res.NewVersion,
		Sites:         res.Sites,
		Replayed:      res.Replayed,
		Dropped:       int(res.Dropped),
		Retained:      int(res.Retained),
		Patched:       int(res.Patched),
		Retries:       res.Retries,
		BytesSent:     res.BytesSent,
		BytesReceived: res.BytesRecv,
		TotalCompute:  res.Compute,
	}, nil
}

// EvaluateCentralized evaluates query over the unfragmented document with
// the efficient O(|T|·|Q|) centralized algorithm — the single-site
// baseline. Returns the matched elements' labels and values.
func EvaluateCentralized(doc *Document, query string) ([]Answer, error) {
	c, err := xpath.Compile(query)
	if err != nil {
		return nil, err
	}
	var out []Answer
	for _, n := range centeval.EvalVectorNodes(doc.tree, c) {
		out = append(out, Answer{Fragment: 0, Node: int(n.ID), Label: n.Label, Value: n.Value()})
	}
	return out, nil
}

// CompileCheck parses and compiles a query, returning a descriptive error
// for invalid input. Useful for validating user queries up front.
func CompileCheck(query string) error {
	_, err := xpath.Compile(query)
	return err
}

// NormalForm renders the §2.2 normal form of a query.
func NormalForm(query string) (string, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return "", err
	}
	return xpath.NormalForm(q), nil
}
