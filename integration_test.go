package paxq_test

import (
	"context"
	"sort"
	"sync"
	"testing"

	"paxq"
	"paxq/internal/centeval"
	"paxq/internal/fragment"
	"paxq/internal/harness"
	"paxq/internal/pax"
	"paxq/internal/xmark"
	"paxq/internal/xmltree"
	"paxq/internal/xpath"
)

// documentOf round-trips a generated tree through the public parser.
func documentOf(t *testing.T, tree *xmltree.Tree) *paxq.Document {
	t.Helper()
	doc, err := paxq.ParseDocumentString(xmltree.SerializeString(tree.Root))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSoakXMarkAllVariants is the repository's end-to-end soak test: a
// realistically shaped XMark document (~60k nodes), fragmented three
// different ways (top-level, size-based, random-nested) and deployed over
// several sites, queried with the paper's Q1–Q4 plus a batch of additional
// queries, across every algorithm/annotation combination — all checked
// against the centralized oracle.
func TestSoakXMarkAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tree := xmark.Generate(3, xmark.DefaultSite.Scale(2), 99)
	queries := []string{
		harness.Q1, harness.Q2, harness.Q3, harness.Q4,
		"/sites/site/regions/namerica/item/name",
		`//open_auction[current/val() > 100]/itemref`,
		`//person[not(creditcard)]/name`,
		`//item[location = "US" or location = "Canada"]//text`,
		`//closed_auction[price/val() >= 100 and price/val() < 300]/date`,
		"/sites/site/*/person",
		`//annotation[happiness/val() >= 7]/author`,
	}
	type cutSpec struct {
		name string
		cuts []xmltree.NodeID
	}
	var specs []cutSpec
	var top []xmltree.NodeID
	tree.Root.ElementChildren(func(n *xmltree.Node) bool {
		top = append(top, n.ID)
		return true
	})
	specs = append(specs, cutSpec{"top-level", top[1:]})
	specs = append(specs, cutSpec{"by-size", fragment.CutsBySize(tree, 8000)})
	specs = append(specs, cutSpec{"random-nested", fragment.RandomCuts(tree, 12, 5)})

	variants := []pax.Options{
		{Algorithm: pax.PaX3},
		{Algorithm: pax.PaX3, Annotations: true},
		{Algorithm: pax.PaX2},
		{Algorithm: pax.PaX2, Annotations: true},
	}

	for _, spec := range specs {
		ft, err := fragment.Cut(tree, spec.cuts)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		topo := pax.RoundRobin(ft, 4)
		local, _ := pax.BuildLocalCluster(topo)
		eng := pax.NewEngine(topo, local)
		for _, query := range queries {
			c := xpath.MustCompile(query)
			want := centeval.EvalVector(tree, c)
			for _, opts := range variants {
				res, err := eng.RunContext(context.Background(), query, opts)
				if err != nil {
					t.Fatalf("%s %v %q: %v", spec.name, opts.Algorithm, query, err)
				}
				got := make([]xmltree.NodeID, 0, len(res.Answers))
				for _, a := range res.Answers {
					got = append(got, ft.Frag(a.Frag).Origin[a.Node])
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("%s %v(XA=%v) %q: %d answers, want %d",
						spec.name, opts.Algorithm, opts.Annotations, query, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s %v(XA=%v) %q: answer mismatch at %d",
							spec.name, opts.Algorithm, opts.Annotations, query, i)
					}
				}
				maxVisits := 3
				if opts.Algorithm == pax.PaX2 {
					maxVisits = 2
				}
				if res.MaxVisits > maxVisits {
					t.Fatalf("%s %v %q: %d visits", spec.name, opts.Algorithm, query, res.MaxVisits)
				}
			}
		}
	}
}

// TestSoakBooleanProtocol runs a batch of Boolean queries over the soak
// document through the one-visit protocol.
func TestSoakBooleanProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tree := xmark.Generate(2, xmark.DefaultSite, 17)
	ft, err := fragment.Cut(tree, fragment.RandomCuts(tree, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	topo := pax.RoundRobin(ft, 3)
	local, _ := pax.BuildLocalCluster(topo)
	eng := pax.NewEngine(topo, local)
	queries := []string{
		`[//person/address/country = "US"]`,
		`[//person/address/country = "Atlantis"]`,
		`[//open_auction[current/val() > 10] and //closed_auction]`,
		`[not(//unheard_of)]`,
		`[//annotation/happiness/val() >= 1]`,
	}
	for _, q := range queries {
		want := centeval.EvalBool(tree, xpath.MustCompile(q))
		got, res, err := eng.RunBooleanContext(context.Background(), q, pax.Options{})
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if got != want {
			t.Errorf("%q = %v want %v", q, got, want)
		}
		if res.MaxVisits > 1 {
			t.Errorf("%q: %d visits", q, res.MaxVisits)
		}
	}
}

// TestClusterConcurrentQueries exercises the public serving contract: one
// Cluster over the TCP transport, queried from many goroutines at once,
// with every response's Stats covering its own query alone (visit bound
// and deterministic request bytes both hold per query).
func TestClusterConcurrentQueries(t *testing.T) {
	tree := xmark.Generate(2, xmark.DefaultSite, 7)
	doc := documentOf(t, tree)
	cluster, err := paxq.NewCluster(doc, paxq.ClusterOptions{
		Fragments: 6,
		Sites:     3,
		Transport: paxq.TransportTCP,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	queries := []string{
		harness.Q1,
		harness.Q2,
		"/sites/site/regions/namerica/item/name",
		`//person[not(creditcard)]/name`,
	}
	opts := paxq.QueryOptions{Algorithm: "pax3", Annotations: true}

	// Solo baselines: answer counts and the (deterministic) sent bytes.
	// Exact BytesSent equality relies on every QueryID gob-encoding to the
	// same width, which holds while total runs on this cluster stay under
	// 64 (4 solo + 24 concurrent here); widen tolerance before scaling up.
	type base struct {
		answers int
		sent    int64
	}
	bases := make([]base, len(queries))
	for i, q := range queries {
		ans, stats, err := cluster.Query(q, opts)
		if err != nil {
			t.Fatalf("solo %q: %v", q, err)
		}
		bases[i] = base{answers: len(ans), sent: stats.BytesSent}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				qi := (w + i) % len(queries)
				ans, stats, err := cluster.Query(queries[qi], opts)
				if err != nil {
					t.Errorf("worker %d %q: %v", w, queries[qi], err)
					return
				}
				if len(ans) != bases[qi].answers {
					t.Errorf("%q: %d answers, solo run had %d", queries[qi], len(ans), bases[qi].answers)
				}
				if stats.BytesSent != bases[qi].sent {
					t.Errorf("%q: BytesSent = %d, solo run had %d — stats leaked across queries",
						queries[qi], stats.BytesSent, bases[qi].sent)
				}
				if stats.MaxSiteVisits > 3 {
					t.Errorf("%q: MaxSiteVisits = %d", queries[qi], stats.MaxSiteVisits)
				}
			}
		}()
	}
	wg.Wait()
}
