package paxq_test

import (
	"sort"
	"testing"

	"paxq/internal/centeval"
	"paxq/internal/fragment"
	"paxq/internal/harness"
	"paxq/internal/pax"
	"paxq/internal/xmark"
	"paxq/internal/xmltree"
	"paxq/internal/xpath"
)

// TestSoakXMarkAllVariants is the repository's end-to-end soak test: a
// realistically shaped XMark document (~60k nodes), fragmented three
// different ways (top-level, size-based, random-nested) and deployed over
// several sites, queried with the paper's Q1–Q4 plus a batch of additional
// queries, across every algorithm/annotation combination — all checked
// against the centralized oracle.
func TestSoakXMarkAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tree := xmark.Generate(3, xmark.DefaultSite.Scale(2), 99)
	queries := []string{
		harness.Q1, harness.Q2, harness.Q3, harness.Q4,
		"/sites/site/regions/namerica/item/name",
		`//open_auction[current/val() > 100]/itemref`,
		`//person[not(creditcard)]/name`,
		`//item[location = "US" or location = "Canada"]//text`,
		`//closed_auction[price/val() >= 100 and price/val() < 300]/date`,
		"/sites/site/*/person",
		`//annotation[happiness/val() >= 7]/author`,
	}
	type cutSpec struct {
		name string
		cuts []xmltree.NodeID
	}
	var specs []cutSpec
	var top []xmltree.NodeID
	tree.Root.ElementChildren(func(n *xmltree.Node) bool {
		top = append(top, n.ID)
		return true
	})
	specs = append(specs, cutSpec{"top-level", top[1:]})
	specs = append(specs, cutSpec{"by-size", fragment.CutsBySize(tree, 8000)})
	specs = append(specs, cutSpec{"random-nested", fragment.RandomCuts(tree, 12, 5)})

	variants := []pax.Options{
		{Algorithm: pax.PaX3},
		{Algorithm: pax.PaX3, Annotations: true},
		{Algorithm: pax.PaX2},
		{Algorithm: pax.PaX2, Annotations: true},
	}

	for _, spec := range specs {
		ft, err := fragment.Cut(tree, spec.cuts)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		topo := pax.RoundRobin(ft, 4)
		local, _ := pax.BuildLocalCluster(topo)
		eng := pax.NewEngine(topo, local)
		for _, query := range queries {
			c := xpath.MustCompile(query)
			want := centeval.EvalVector(tree, c)
			for _, opts := range variants {
				res, err := eng.Run(query, opts)
				if err != nil {
					t.Fatalf("%s %v %q: %v", spec.name, opts.Algorithm, query, err)
				}
				got := make([]xmltree.NodeID, 0, len(res.Answers))
				for _, a := range res.Answers {
					got = append(got, ft.Frag(a.Frag).Origin[a.Node])
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("%s %v(XA=%v) %q: %d answers, want %d",
						spec.name, opts.Algorithm, opts.Annotations, query, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s %v(XA=%v) %q: answer mismatch at %d",
							spec.name, opts.Algorithm, opts.Annotations, query, i)
					}
				}
				maxVisits := 3
				if opts.Algorithm == pax.PaX2 {
					maxVisits = 2
				}
				if res.MaxVisits > maxVisits {
					t.Fatalf("%s %v %q: %d visits", spec.name, opts.Algorithm, query, res.MaxVisits)
				}
			}
		}
	}
}

// TestSoakBooleanProtocol runs a batch of Boolean queries over the soak
// document through the one-visit protocol.
func TestSoakBooleanProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tree := xmark.Generate(2, xmark.DefaultSite, 17)
	ft, err := fragment.Cut(tree, fragment.RandomCuts(tree, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	topo := pax.RoundRobin(ft, 3)
	local, _ := pax.BuildLocalCluster(topo)
	eng := pax.NewEngine(topo, local)
	queries := []string{
		`[//person/address/country = "US"]`,
		`[//person/address/country = "Atlantis"]`,
		`[//open_auction[current/val() > 10] and //closed_auction]`,
		`[not(//unheard_of)]`,
		`[//annotation/happiness/val() >= 1]`,
	}
	for _, q := range queries {
		want := centeval.EvalBool(tree, xpath.MustCompile(q))
		got, res, err := eng.RunBoolean(q, pax.Options{})
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if got != want {
			t.Errorf("%q = %v want %v", q, got, want)
		}
		if res.MaxVisits > 1 {
			t.Errorf("%q: %d visits", q, res.MaxVisits)
		}
	}
}
